package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("Counter not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	f := r.FloatGauge("f")
	f.Set(1.5)
	if f.Value() != 1.5 {
		t.Fatalf("float gauge = %v", f.Value())
	}
}

// TestHistogramBucketBoundaries pins the bucket semantics: bucket i counts
// x ≤ bounds[i] (and > bounds[i-1]), the last implicit bucket counts
// overflow, and values below the first bound land in bucket 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, x := range []float64{-3, 0, 1} { // ≤ 1 → bucket 0
		h.Observe(x)
	}
	h.Observe(1.5) // bucket 1
	h.Observe(2)   // boundary: still bucket 1 (≤ 2)
	h.Observe(4)   // bucket 2
	h.Observe(4.1) // overflow
	s := h.Snapshot()
	wantCounts := []uint64{3, 2, 1, 1}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], want, s)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Min != -3 || s.Max != 4.1 {
		t.Fatalf("min/max = %v/%v, want -3/4.1", s.Min, s.Max)
	}
	wantSum := -3 + 0 + 1 + 1.5 + 2 + 4 + 4.1
	if math.Abs(s.Sum-wantSum) > 1e-12 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if math.Abs(s.Mean()-wantSum/7) > 1e-12 {
		t.Fatalf("mean = %v, want %v", s.Mean(), wantSum/7)
	}
}

func TestEmptyHistogramSnapshotIsFinite(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	s := r.Snapshot()
	hs := s.Histograms["h"]
	if hs.Min != 0 || hs.Max != 0 || hs.Count != 0 {
		t.Fatalf("empty histogram snapshot %+v", hs)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(2, 3, 4)
	want := []float64{2, 5, 8, 11}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExpBuckets(1, 2, 5)
	want = []float64{1, 2, 4, 8, 16}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bounds mismatch")
		}
	}()
	r.Histogram("h", []float64{1, 3})
}

// TestShardMerge checks that shard-local values fold into the registry and
// that the shard resets for reuse without double-counting.
func TestShardMerge(t *testing.T) {
	r := NewRegistry()
	sh := r.NewShard()
	c := sh.Counter("events")
	h := sh.Histogram("sizes", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	snap := sh.Snapshot()
	if snap["events"].(uint64) != 10 {
		t.Fatalf("shard snapshot events = %v", snap["events"])
	}
	hs := snap["sizes"].(HistogramSnapshot)
	if hs.Count != 3 || hs.Min != 1 || hs.Max != 9 || hs.Sum != 13 {
		t.Fatalf("shard snapshot sizes = %+v", hs)
	}

	sh.Merge()
	if got := r.Counter("events").Value(); got != 10 {
		t.Fatalf("merged counter = %d, want 10", got)
	}
	rh := r.Histogram("sizes", []float64{1, 2, 4}).Snapshot()
	if rh.Count != 3 || rh.Min != 1 || rh.Max != 9 {
		t.Fatalf("merged histogram = %+v", rh)
	}
	if rh.Counts[0] != 1 || rh.Counts[2] != 1 || rh.Counts[3] != 1 {
		t.Fatalf("merged buckets = %v", rh.Counts)
	}
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("shard not reset by Merge")
	}

	// Reuse after Merge: totals accumulate, min/max re-seed correctly.
	c.Add(5)
	h.Observe(2)
	sh.Merge()
	if got := r.Counter("events").Value(); got != 15 {
		t.Fatalf("counter after second merge = %d, want 15", got)
	}
	rh = r.Histogram("sizes", []float64{1, 2, 4}).Snapshot()
	if rh.Count != 4 || rh.Min != 1 || rh.Max != 9 {
		t.Fatalf("histogram after second merge = %+v", rh)
	}
}

// TestConcurrentShardsAndCounters exercises the contention model under
// -race: one shard per goroutine (plain increments) merging into shared
// atomics, plus direct registry updates from every goroutine.
func TestConcurrentShardsAndCounters(t *testing.T) {
	const workers, perWorker = 8, 10000
	r := NewRegistry()
	direct := r.Counter("direct")
	hist := r.Histogram("direct_hist", []float64{0.25, 0.5, 0.75})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := r.NewShard()
			c := sh.Counter("sharded")
			h := sh.Histogram("sharded_hist", []float64{10, 100})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				direct.Inc()
				hist.Observe(float64(i%4) / 4)
			}
			sh.Merge()
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := r.Counter("sharded").Value(); got != total {
		t.Fatalf("sharded total = %d, want %d", got, total)
	}
	if got := direct.Value(); got != total {
		t.Fatalf("direct total = %d, want %d", got, total)
	}
	if got := hist.Count(); got != total {
		t.Fatalf("direct histogram count = %d, want %d", got, total)
	}
	hs := r.Histogram("sharded_hist", []float64{10, 100}).Snapshot()
	if hs.Count != total || hs.Min != 0 || hs.Max != 199 {
		t.Fatalf("sharded histogram = %+v", hs)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("wall")
	tm.Observe(250 * time.Millisecond)
	tm.Since(time.Now().Add(-time.Millisecond))
	s := tm.Snapshot()
	if s.Count != 2 {
		t.Fatalf("timer count = %d", s.Count)
	}
	if s.Max < 0.25 || s.Max > 0.3 {
		t.Fatalf("timer max = %v, want ≈0.25", s.Max)
	}
}

func TestWriteTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a.count", "b.count", "counters:", "gauges:", "histograms:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatalf("table not sorted:\n%s", out)
	}
}

func TestJournal(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Record("alpha", map[string]any{"x": 1, "inf": math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("beta", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["kind"] != "alpha" || rec["x"] != float64(1) {
		t.Fatalf("record = %v", rec)
	}
	if v, present := rec["inf"]; !present || v != nil {
		t.Fatalf("non-finite field not nulled: %v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Fatalf("bad ts: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, &json.UnsupportedValueError{} }

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{})
	if err := j.Record("x", nil); err == nil {
		t.Fatal("no error from failing writer")
	}
	if j.Err() == nil {
		t.Fatal("error not sticky")
	}
}

func BenchmarkShardCounterInc(b *testing.B) {
	sh := NewRegistry().NewShard()
	c := sh.Counter("c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkShardHistogramObserve(b *testing.B) {
	sh := NewRegistry().NewShard()
	h := sh.Histogram("h", ExpBuckets(1, 2, 9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 255))
	}
}

func BenchmarkRegistryCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
