package obs

import "runtime"

// RecordMemStats publishes runtime.MemStats-derived GC telemetry into the
// registry as gauges:
//
//	runtime.heap_live_bytes   bytes of live heap objects (HeapAlloc)
//	runtime.heap_objects      count of live heap objects
//	runtime.gc_count          completed GC cycles since process start
//	runtime.gc_pause_total_s  cumulative stop-the-world pause time
//	runtime.gc_cpu_fraction   fraction of CPU time spent in GC
//
// The runner calls it once per estimate — ReadMemStats stops the world, so
// it must never sit inside the replication hot loop. With the pooled event
// engine and recycled model instances these gauges stay flat across
// estimates, which is exactly what the cctop GC line is there to show.
func RecordMemStats(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.heap_live_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("runtime.heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("runtime.gc_count").Set(int64(ms.NumGC))
	r.FloatGauge("runtime.gc_pause_total_s").Set(float64(ms.PauseTotalNs) / 1e9)
	r.FloatGauge("runtime.gc_cpu_fraction").Set(ms.GCCPUFraction)
}
