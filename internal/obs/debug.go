package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/provenance"
)

// DebugServer is the live profiling endpoint behind the CLIs' -debug-addr
// flag: net/http/pprof under /debug/pprof/, expvar under /debug/vars, a
// JSON dump of a metrics registry under /metricz, the same registry in
// Prometheus text exposition format under /metricz.prom (so standard
// scrapers work against single runs and servers alike), and the process's
// provenance stamp under /buildz — so "which commit is this long-running
// worker actually on?" is one curl away. It serves on its own mux (nothing
// is registered on http.DefaultServeMux) so importing this package never
// changes an embedding program's routes.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr (e.g. "127.0.0.1:6060", or ":0" for an ephemeral
// port) and serves the debug endpoints in a background goroutine until
// Close. The registry may be nil, in which case /metricz reports an empty
// snapshot.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, _ *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/metricz.prom", func(w http.ResponseWriter, _ *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		w.Header().Set("Content-Type", PromContentType)
		_ = WriteProm(w, snap)
	})
	mux.HandleFunc("/buildz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(provenance.Collect())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "debug endpoints: /metricz /metricz.prom /buildz /debug/vars /debug/pprof/")
	})
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address (resolves ":0" requests).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
