package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", LinearBuckets(10, 10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	// 1..100 uniform over bounds 10,20,…,100: interpolation is exact.
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, 50},
		{"p90", s.P90, 90},
		{"p99", s.P99, 99},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestShardHistogramQuantilesMatchRegistry(t *testing.T) {
	reg := NewRegistry()
	sh := reg.NewShard()
	lh := sh.Histogram("q", LinearBuckets(10, 10, 10))
	for i := 1; i <= 100; i++ {
		lh.Observe(float64(i))
	}
	local := lh.Snapshot()
	sh.Merge()
	merged := reg.Histogram("q", LinearBuckets(10, 10, 10)).Snapshot()
	if local.P50 != merged.P50 || local.P90 != merged.P90 || local.P99 != merged.P99 {
		t.Errorf("shard quantiles %v/%v/%v differ from registry %v/%v/%v",
			local.P50, local.P90, local.P99, merged.P50, merged.P90, merged.P99)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()

	empty := reg.Histogram("empty", []float64{1, 2}).Snapshot()
	if empty.P50 != 0 || empty.P90 != 0 || empty.P99 != 0 {
		t.Errorf("empty histogram quantiles not zero: %+v", empty)
	}

	one := reg.Histogram("one", []float64{1, 2})
	one.Observe(1.5)
	s := one.Snapshot()
	if s.P50 != 1.5 || s.P99 != 1.5 {
		t.Errorf("single observation: p50=%v p99=%v, want 1.5 (clamped to min/max)", s.P50, s.P99)
	}

	// All mass in the overflow bucket: quantiles clamp into [min, max].
	over := reg.Histogram("over", []float64{1})
	over.Observe(10)
	over.Observe(20)
	s = over.Snapshot()
	if s.P50 < 10 || s.P50 > 20 || s.P99 < 10 || s.P99 > 20 {
		t.Errorf("overflow-bucket quantiles outside [10,20]: p50=%v p99=%v", s.P50, s.P99)
	}

	// Quantiles never exceed the observed extremes even when the owning
	// bucket's edges do.
	wide := reg.Histogram("wide", []float64{1000})
	wide.Observe(3)
	wide.Observe(4)
	s = wide.Snapshot()
	if s.P99 > 4 || s.P50 < 3 {
		t.Errorf("quantiles escaped [min,max]: p50=%v p99=%v", s.P50, s.P99)
	}
}
