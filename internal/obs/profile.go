package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfileCapture is active self-profiling: a postmortem that arrives with
// its own explanation. Trigger arms one bounded capture window — a CPU
// profile and (optionally) a runtime/trace over the window, then heap and
// goroutine profiles at its end — and commits every file atomically
// (temp + rename) into the capture directory, beside the heartbeats of a
// distributed run. A JSON capture manifest is committed last, so a
// manifest on disk implies every profile it names is complete.
//
// Captures run on their own goroutine; Trigger never blocks the caller and
// at most one capture is in flight at a time. MaxCaptures bounds total
// disk: a wedged worker that keeps tripping the straggler trigger cannot
// fill the run directory.
type ProfileCapture struct {
	o ProfileCaptureOptions

	mu   sync.Mutex
	busy bool
	seq  int
	wg   sync.WaitGroup
}

// ProfileCaptureOptions configures a ProfileCapture.
type ProfileCaptureOptions struct {
	// Dir receives the profile files; created on first capture.
	Dir string
	// Prefix names the capture files ("<prefix>-NNN-cpu.pprof", ...);
	// usually the worker name. Default "profile". Path separators are
	// flattened, as in heartbeat file names.
	Prefix string
	// Window is how long the CPU profile (and trace, if enabled) runs.
	// Default 2s.
	Window time.Duration
	// NoCPU skips the CPU profile — e.g. when the process already runs
	// one globally. Heap and goroutine profiles are always captured: they
	// are instantaneous and explain memory stragglers the CPU profile
	// cannot.
	NoCPU bool
	// Trace additionally records a runtime/trace over the window.
	Trace bool
	// MaxCaptures bounds how many captures one process may write.
	// Default 4; negative means unlimited.
	MaxCaptures int
	// Meta is stamped into the capture manifest (typically a
	// provenance.Stamp), so a profile file can always answer "which
	// binary, which machine, which config produced you".
	Meta any
	// Log, when non-nil, receives one line per capture event.
	Log func(format string, args ...any)
}

func (o ProfileCaptureOptions) withDefaults() ProfileCaptureOptions {
	if o.Prefix == "" {
		o.Prefix = "profile"
	}
	o.Prefix = strings.Map(func(r rune) rune {
		if r == '/' || r == '\\' || r == 0 {
			return '_'
		}
		return r
	}, o.Prefix)
	if o.Window <= 0 {
		o.Window = 2 * time.Second
	}
	if o.MaxCaptures == 0 {
		o.MaxCaptures = 4
	}
	return o
}

// ProfileInfo is one committed capture, as recorded by its manifest
// ("<prefix>-NNN.profile.json").
type ProfileInfo struct {
	Prefix string `json:"prefix"`
	Seq    int    `json:"seq"`
	// Reason says what armed the capture ("periodic", "events_per_sec
	// 1200 below trailing band 5400", ...).
	Reason string `json:"reason"`
	// UnixMS is when the capture window opened; WallMS its total length.
	UnixMS int64   `json:"unix_ms"`
	WallMS float64 `json:"wall_ms"`
	// Files are the committed profile file names (base names, same
	// directory as the manifest).
	Files []string `json:"files"`
	// Meta is the capture-time metadata (a provenance stamp, typically).
	Meta json.RawMessage `json:"meta,omitempty"`
}

// NewProfileCapture returns an armed-but-idle capturer. The directory is
// not touched until the first Trigger.
func NewProfileCapture(o ProfileCaptureOptions) *ProfileCapture {
	return &ProfileCapture{o: o.withDefaults()}
}

// Trigger arms one capture and returns immediately. It reports false when
// a capture is already in flight or the MaxCaptures budget is spent — the
// caller needs no debouncing of its own.
func (p *ProfileCapture) Trigger(reason string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	if p.busy || (p.o.MaxCaptures >= 0 && p.seq >= p.o.MaxCaptures) {
		p.mu.Unlock()
		return false
	}
	p.busy = true
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() {
			p.mu.Lock()
			p.busy = false
			p.mu.Unlock()
		}()
		if err := p.capture(seq, reason); err != nil {
			p.logf("profile capture %d failed: %v", seq, err)
		}
	}()
	return true
}

// Wait blocks until any in-flight capture has committed. Call before
// process exit so the last capture is not torn. Nil-safe.
func (p *ProfileCapture) Wait() {
	if p == nil {
		return
	}
	p.wg.Wait()
}

// Captures returns how many captures have been triggered.
func (p *ProfileCapture) Captures() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

func (p *ProfileCapture) logf(format string, args ...any) {
	if p.o.Log != nil {
		p.o.Log(format, args...)
	}
}

// capture runs one bounded window and commits its files.
func (p *ProfileCapture) capture(seq int, reason string) error {
	start := time.Now()
	if err := os.MkdirAll(p.o.Dir, 0o777); err != nil {
		return err
	}
	p.logf("profile capture %d armed (%s): %v window into %s", seq, reason, p.o.Window, p.o.Dir)
	base := fmt.Sprintf("%s-%03d", p.o.Prefix, seq)
	var files []string
	commit := func(suffix string, write func(f *os.File) error) error {
		name := base + suffix
		if err := atomicProfile(p.o.Dir, name, write); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		files = append(files, name)
		return nil
	}

	// Window phase: CPU profile and trace record concurrently for Window.
	var cpuErr, traceErr error
	var cpuTmp, traceTmp *os.File
	if !p.o.NoCPU {
		cpuTmp, cpuErr = os.CreateTemp(p.o.Dir, base+".tmp-*")
		if cpuErr == nil {
			// StartCPUProfile fails if another CPU profile is running
			// (e.g. -debug-addr's /debug/pprof/profile); skip, keep going.
			if err := pprof.StartCPUProfile(cpuTmp); err != nil {
				cpuErr = err
				cpuTmp.Close()
				os.Remove(cpuTmp.Name())
				cpuTmp = nil
			}
		}
	}
	if p.o.Trace {
		traceTmp, traceErr = os.CreateTemp(p.o.Dir, base+".tmp-*")
		if traceErr == nil {
			if err := trace.Start(traceTmp); err != nil {
				traceErr = err
				traceTmp.Close()
				os.Remove(traceTmp.Name())
				traceTmp = nil
			}
		}
	}
	time.Sleep(p.o.Window)
	if cpuTmp != nil {
		pprof.StopCPUProfile()
		if err := commitTemp(cpuTmp, filepath.Join(p.o.Dir, base+"-cpu.pprof")); err != nil {
			cpuErr = err
		} else {
			files = append(files, base+"-cpu.pprof")
		}
	}
	if traceTmp != nil {
		trace.Stop()
		if err := commitTemp(traceTmp, filepath.Join(p.o.Dir, base+"-trace.out")); err != nil {
			traceErr = err
		} else {
			files = append(files, base+"-trace.out")
		}
	}
	if cpuErr != nil {
		p.logf("profile capture %d: cpu profile skipped: %v", seq, cpuErr)
	}
	if traceErr != nil {
		p.logf("profile capture %d: trace skipped: %v", seq, traceErr)
	}

	// Instant phase: heap (post-GC, so it shows live objects) and
	// goroutine profiles at the end of the window.
	if err := commit("-heap.pprof", func(f *os.File) error {
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	}); err != nil {
		p.logf("profile capture %d: %v", seq, err)
	}
	if err := commit("-goroutine.pprof", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 0)
	}); err != nil {
		p.logf("profile capture %d: %v", seq, err)
	}

	// Manifest last: its presence certifies the files it names.
	info := ProfileInfo{
		Prefix: p.o.Prefix,
		Seq:    seq,
		Reason: reason,
		UnixMS: start.UnixMilli(),
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		Files:  files,
	}
	if p.o.Meta != nil {
		if raw, err := json.Marshal(p.o.Meta); err == nil {
			info.Meta = raw
		}
	}
	err := commit(profileManifestSuffix, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	})
	if err == nil {
		p.logf("profile capture %d committed: %s", seq, strings.Join(files, ", "))
	}
	return err
}

// profileManifestSuffix marks capture manifests; ReadProfiles scans for it.
const profileManifestSuffix = ".profile.json"

// atomicProfile writes one file via temp + rename.
func atomicProfile(dir, name string, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	return commitTemp(tmp, filepath.Join(dir, name))
}

// commitTemp syncs, closes and renames an open temp file into place.
func commitTemp(tmp *os.File, path string) error {
	name := tmp.Name()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// ReadProfiles lists the committed captures in a profile directory, sorted
// by prefix then sequence. A missing directory is an empty list, not an
// error; torn temp files and unreadable manifests are skipped, because a
// reader (cctop) may race a capture in flight.
func ReadProfiles(dir string) ([]ProfileInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("obs: %w", err)
	}
	var out []ProfileInfo
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), profileManifestSuffix) || strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var info ProfileInfo
		if err := json.Unmarshal(data, &info); err != nil {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix != out[j].Prefix {
			return out[i].Prefix < out[j].Prefix
		}
		return out[i].Seq < out[j].Seq
	})
	return out, nil
}
