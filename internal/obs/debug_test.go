package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.count").Add(3)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metricz"), &snap); err != nil {
		t.Fatalf("/metricz not JSON: %v", err)
	}
	if snap.Counters["test.count"] != 3 {
		t.Fatalf("/metricz counters = %v", snap.Counters)
	}

	// The registry is live: a later update is visible on the next scrape.
	reg.Counter("test.count").Inc()
	if err := json.Unmarshal(get("/metricz"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.count"] != 4 {
		t.Fatalf("live /metricz counters = %v", snap.Counters)
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatalf("/debug/vars missing memstats: %v", vars)
	}

	get("/debug/pprof/")
	get("/")

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the port no longer accepts connections.
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get(fmt.Sprintf("http://%s/", d.Addr())); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metricz", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
