package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/provenance"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.count").Add(3)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metricz"), &snap); err != nil {
		t.Fatalf("/metricz not JSON: %v", err)
	}
	if snap.Counters["test.count"] != 3 {
		t.Fatalf("/metricz counters = %v", snap.Counters)
	}

	// The registry is live: a later update is visible on the next scrape.
	reg.Counter("test.count").Inc()
	if err := json.Unmarshal(get("/metricz"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.count"] != 4 {
		t.Fatalf("live /metricz counters = %v", snap.Counters)
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatalf("/debug/vars missing memstats: %v", vars)
	}

	get("/debug/pprof/")
	get("/")

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the port no longer accepts connections.
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get(fmt.Sprintf("http://%s/", d.Addr())); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestDebugServerPromEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.count").Add(3)
	reg.Timer("test.wall_s").Observe(time.Millisecond)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metricz.prom", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != PromContentType {
		t.Fatalf("Content-Type %q, want %q", got, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE test_count counter\ntest_count 3\n",
		"# TYPE test_wall_s histogram",
		`test_wall_s_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metricz.prom missing %q:\n%s", want, body)
		}
	}

	// The index advertises the scrape path and carries a content type.
	idx, err := http.Get(fmt.Sprintf("http://%s/", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Body.Close()
	if got := idx.Header.Get("Content-Type"); got != "text/plain; charset=utf-8" {
		t.Fatalf("index Content-Type %q", got)
	}
	idxBody, _ := io.ReadAll(idx.Body)
	if !strings.Contains(string(idxBody), "/metricz.prom") {
		t.Fatalf("index does not advertise /metricz.prom: %s", idxBody)
	}
}

func TestDebugServerBuildz(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/buildz", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("/buildz Content-Type %q", got)
	}
	var stamp provenance.Stamp
	if err := json.NewDecoder(resp.Body).Decode(&stamp); err != nil {
		t.Fatalf("/buildz not a provenance stamp: %v", err)
	}
	if stamp.GoVersion == "" || stamp.Goos == "" || stamp.Goarch == "" {
		t.Fatalf("/buildz stamp incomplete: %+v", stamp)
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metricz", d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
