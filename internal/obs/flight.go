package obs

import (
	"sync"
	"time"
)

// FlightEvent is one entry of a FlightRecorder: a timestamped structured
// event compact enough to embed whole rings of them in heartbeat
// snapshots.
type FlightEvent struct {
	// UnixMS is the wall-clock record time in milliseconds.
	UnixMS int64 `json:"unix_ms"`
	// Kind classifies the event ("claim", "complete", "reclaim", …).
	Kind string `json:"kind"`
	// Block is the block the event concerns, or -1 when not block-scoped.
	Block int `json:"block"`
	// Msg is the human-readable line.
	Msg string `json:"msg,omitempty"`
}

// FlightRecorder is a fixed-size ring of the most recent structured
// events — the crash "black box": a worker records its claims, commits and
// reclaims into the ring, every heartbeat snapshot carries the ring's
// contents, and when the process dies without warning (SIGKILL, OOM) the
// last persisted heartbeat is a postmortem of what it was doing. Safe for
// concurrent use; recording never allocates once the ring is full-sized,
// beyond the strings the caller builds.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightEvent
	next  int
	total uint64
}

// DefaultFlightEvents is the ring size NewFlightRecorder(0) uses.
const DefaultFlightEvents = 64

// NewFlightRecorder returns a recorder keeping the last n events
// (DefaultFlightEvents when n ≤ 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{ring: make([]FlightEvent, 0, n)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (f *FlightRecorder) Record(kind string, block int, msg string) {
	ev := FlightEvent{UnixMS: time.Now().UnixMilli(), Kind: kind, Block: block, Msg: msg}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
		return
	}
	f.ring[f.next] = ev
	f.next = (f.next + 1) % len(f.ring)
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Total returns how many events were ever recorded (including evicted
// ones), so readers can tell a quiet worker from a wrapped ring.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
