package obs

import "fmt"

// MergeSnapshots folds per-worker registry snapshots into one fleet view,
// the aggregation primitive behind `cctop -run`: counters sum, gauges keep
// the last writer (argument order decides, so callers pass snapshots in a
// deterministic order — e.g. sorted by worker name), and fixed-bound
// histograms merge bucket-by-bucket, which is exact for counts, sums and
// min/max and bucket-resolution-exact for the interpolated quantiles.
// Merging histograms whose bucket bounds differ is an error: the metric
// layouts are fixed at registration, so a mismatch means the snapshots
// come from incompatible builds and silently mixing them would corrupt
// the buckets. Histogram snapshots that carry observations but dropped
// their bucket vectors (the compact per-replication journal form) are
// also refused — there is nothing sound to merge.
func MergeSnapshots(snaps ...Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:    map[string]uint64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
		Timers:      map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] = v
		}
		for name, v := range s.FloatGauges {
			out.FloatGauges[name] = v
		}
		for name, h := range s.Histograms {
			merged, err := mergeHistogram(name, out.Histograms[name], h)
			if err != nil {
				return Snapshot{}, err
			}
			out.Histograms[name] = merged
		}
		for name, h := range s.Timers {
			merged, err := mergeHistogram(name, out.Timers[name], h)
			if err != nil {
				return Snapshot{}, err
			}
			out.Timers[name] = merged
		}
	}
	for name, h := range out.Histograms {
		h.fillQuantiles(h.Bounds, h.Counts)
		out.Histograms[name] = h
	}
	for name, h := range out.Timers {
		h.fillQuantiles(h.Bounds, h.Counts)
		out.Timers[name] = h
	}
	return out, nil
}

// mergeHistogram folds one snapshot histogram into the accumulated one.
// Quantiles are NOT refreshed here — MergeSnapshots does that once at the
// end, from the final merged buckets.
func mergeHistogram(name string, dst, src HistogramSnapshot) (HistogramSnapshot, error) {
	if src.Count > 0 && len(src.Counts) == 0 {
		return dst, fmt.Errorf("obs: merge %q: snapshot carries %d observations but no bucket counts (compact form?)", name, src.Count)
	}
	if len(src.Counts) > 0 && len(src.Counts) != len(src.Bounds)+1 {
		return dst, fmt.Errorf("obs: merge %q: %d bucket counts for %d bounds", name, len(src.Counts), len(src.Bounds))
	}
	if len(dst.Counts) == 0 {
		// First sight of this metric: copy so later folds cannot alias the
		// caller's slices.
		out := src
		out.Bounds = append([]float64(nil), src.Bounds...)
		out.Counts = append([]uint64(nil), src.Counts...)
		return out, nil
	}
	if len(src.Counts) == 0 {
		return dst, nil // empty boundless snapshot: nothing to fold
	}
	if !equalBounds(dst.Bounds, src.Bounds) {
		return dst, fmt.Errorf("obs: merge %q: bucket bounds %v != %v", name, src.Bounds, dst.Bounds)
	}
	for i, n := range src.Counts {
		dst.Counts[i] += n
	}
	if src.Count > 0 {
		if dst.Count == 0 || src.Min < dst.Min {
			dst.Min = src.Min
		}
		if dst.Count == 0 || src.Max > dst.Max {
			dst.Max = src.Max
		}
		dst.Count += src.Count
		dst.Sum += src.Sum
	}
	return dst, nil
}
