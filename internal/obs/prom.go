package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package writes (/metricz.prom).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4), so any standard scraper can watch a run through the
// same /metricz.prom endpoint cctop uses for JSON. Metric names are
// sanitized to the Prometheus charset (dots become underscores: the
// counter "runner.events" scrapes as "runner_events"); counters expose as
// counter, gauges as gauge, and histograms/timers as histogram with
// cumulative le-labeled buckets, _sum and _count. Timers keep their
// second-valued buckets, matching the Prometheus base-unit convention.
// Metrics are emitted in sorted name order within each kind, so the
// exposition is deterministic for a given snapshot.
func WriteProm(w io.Writer, s Snapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		p("# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		p("# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.FloatGauges) {
		n := promName(name)
		p("# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.FloatGauges[name]))
	}
	writeHist := func(name string, h HistogramSnapshot) {
		n := promName(name)
		p("# TYPE %s histogram\n", n)
		var cum uint64
		for i, b := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			p("%s_bucket{le=\"%s\"} %d\n", n, promFloat(b), cum)
		}
		p("%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		p("%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count)
	}
	for _, name := range sortedKeys(s.Histograms) {
		writeHist(name, s.Histograms[name])
	}
	for _, name := range sortedKeys(s.Timers) {
		writeHist(name, s.Timers[name])
	}
	return err
}

// promFloat formats a float for the exposition format (NaN/Inf are legal
// there, spelled NaN, +Inf, -Inf).
func promFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every disallowed rune becomes an underscore,
// and a leading digit is prefixed.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
