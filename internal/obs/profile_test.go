package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// gunzipAll decompresses a pprof profile (gzipped protobuf) end to end —
// the strongest structural check available without a protobuf decoder: the
// gzip framing, checksum and length trailer must all be intact.
func gunzipAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("%s: not gzip (pprof profiles are gzipped proto): %v", path, err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s: corrupt gzip stream: %v", path, err)
	}
	if err := zr.Close(); err != nil {
		t.Fatalf("%s: gzip checksum: %v", path, err)
	}
	return out
}

func TestProfileCaptureCommitsParseableProfiles(t *testing.T) {
	dir := t.TempDir()
	p := NewProfileCapture(ProfileCaptureOptions{
		Dir:    dir,
		Prefix: "worker-a",
		Window: 50 * time.Millisecond,
		Trace:  true,
		Meta:   map[string]string{"git_sha": "abc123"},
	})
	if !p.Trigger("unit test") {
		t.Fatal("first Trigger refused")
	}
	// A second trigger while the window is open must be debounced.
	if p.Trigger("too soon") {
		t.Fatal("concurrent Trigger accepted")
	}
	p.Wait()

	infos, err := ReadProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("ReadProfiles = %d captures, want 1", len(infos))
	}
	info := infos[0]
	if info.Prefix != "worker-a" || info.Seq != 1 || info.Reason != "unit test" {
		t.Fatalf("manifest wrong: %+v", info)
	}
	if info.UnixMS == 0 || info.WallMS < 50 {
		t.Fatalf("capture timing wrong: %+v", info)
	}
	if !strings.Contains(string(info.Meta), "abc123") {
		t.Fatalf("meta not stamped: %s", info.Meta)
	}
	want := map[string]bool{
		"worker-a-001-cpu.pprof":       false,
		"worker-a-001-heap.pprof":      false,
		"worker-a-001-goroutine.pprof": false,
		"worker-a-001-trace.out":       false,
	}
	for _, f := range info.Files {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Fatalf("capture lacks %s (files: %v)", f, info.Files)
		}
	}
	// The pprof files must be parseable (intact gzipped proto), the trace
	// must carry the runtime/trace header.
	for _, f := range []string{"worker-a-001-cpu.pprof", "worker-a-001-heap.pprof", "worker-a-001-goroutine.pprof"} {
		if body := gunzipAll(t, filepath.Join(dir, f)); len(body) == 0 {
			t.Fatalf("%s decompressed to nothing", f)
		}
	}
	traceData, err := os.ReadFile(filepath.Join(dir, "worker-a-001-trace.out"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(traceData, []byte("go 1.")) {
		t.Fatalf("trace file lacks runtime/trace header: %q", traceData[:min(16, len(traceData))])
	}
	// No temp droppings survive a clean capture.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("orphan temp file %s", e.Name())
		}
	}
}

func TestProfileCaptureBudget(t *testing.T) {
	dir := t.TempDir()
	p := NewProfileCapture(ProfileCaptureOptions{
		Dir: dir, Window: time.Millisecond, NoCPU: true, MaxCaptures: 2,
	})
	for i := 0; i < 2; i++ {
		if !p.Trigger("capture") {
			t.Fatalf("trigger %d refused inside budget", i+1)
		}
		p.Wait()
	}
	if p.Trigger("over budget") {
		t.Fatal("budget not enforced")
	}
	if p.Captures() != 2 {
		t.Fatalf("Captures = %d", p.Captures())
	}
	infos, err := ReadProfiles(dir)
	if err != nil || len(infos) != 2 {
		t.Fatalf("ReadProfiles = %d, %v", len(infos), err)
	}
	if infos[0].Seq != 1 || infos[1].Seq != 2 {
		t.Fatalf("sequence order wrong: %+v", infos)
	}
}

func TestProfileCaptureNilSafe(t *testing.T) {
	var p *ProfileCapture
	if p.Trigger("nil") {
		t.Fatal("nil capture triggered")
	}
	p.Wait()
	if p.Captures() != 0 {
		t.Fatal("nil capture counted")
	}
}

func TestReadProfilesMissingDir(t *testing.T) {
	infos, err := ReadProfiles(filepath.Join(t.TempDir(), "nope"))
	if err != nil || infos != nil {
		t.Fatalf("missing dir: %v, %v", infos, err)
	}
}
