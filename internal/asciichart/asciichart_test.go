package asciichart

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func demoFigure() *experiments.Figure {
	mk := func(x, y float64) experiments.Point {
		return experiments.Point{
			X:        x,
			Fraction: stats.Interval{Mean: y},
			Total:    stats.Interval{Mean: y * x},
		}
	}
	return &experiments.Figure{
		ID: "demo", Title: "demo figure", XLabel: "processors", YLabel: "useful work fraction",
		Series: []experiments.Series{
			{Name: "alpha", Points: []experiments.Point{mk(1024, 0.9), mk(4096, 0.8), mk(16384, 0.7)}},
			{Name: "beta", Points: []experiments.Point{mk(1024, 0.5), mk(4096, 0.4), mk(16384, 0.3)}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	out := Render(demoFigure(), Options{Width: 40, Height: 10, LogX: true})
	for _, want := range []string{"demo figure", "alpha", "beta", "*", "o", "log scale", "useful work fraction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis endpoints in original domain.
	if !strings.Contains(out, "1.02e+03") && !strings.Contains(out, "1024") {
		t.Fatalf("x-axis left endpoint missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderTopBottomValues(t *testing.T) {
	out := Render(demoFigure(), Options{Width: 30, Height: 8})
	if !strings.Contains(out, "0.9") || !strings.Contains(out, "0.3") {
		t.Fatalf("y-axis extremes missing:\n%s", out)
	}
	// The top row must contain the maximum's marker.
	lines := strings.Split(out, "\n")
	if !strings.ContainsRune(lines[1], '*') {
		t.Fatalf("top row lacks the max point:\n%s", out)
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	out := Render(&experiments.Figure{ID: "empty", Title: "nothing"}, Options{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty figure not flagged:\n%s", out)
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	fig := &experiments.Figure{
		ID: "flat", Title: "flat", XLabel: "x", YLabel: "useful work fraction",
		Series: []experiments.Series{{
			Name: "only",
			Points: []experiments.Point{{
				X: 5, Fraction: stats.Interval{Mean: 0.5},
			}},
		}},
	}
	out := Render(fig, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestRenderOverlapMarker(t *testing.T) {
	mk := func(x, y float64) experiments.Point {
		return experiments.Point{X: x, Fraction: stats.Interval{Mean: y}}
	}
	fig := &experiments.Figure{
		ID: "overlap", Title: "overlap", XLabel: "x", YLabel: "useful work fraction",
		Series: []experiments.Series{
			{Name: "a", Points: []experiments.Point{mk(1, 0.5), mk(2, 0.9)}},
			{Name: "b", Points: []experiments.Point{mk(1, 0.5), mk(2, 0.1)}},
		},
	}
	out := Render(fig, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "?") {
		t.Fatalf("overlapping points not marked:\n%s", out)
	}
}
