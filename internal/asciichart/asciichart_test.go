package asciichart

import (
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func demoFigure() *experiments.Figure {
	mk := func(x, y float64) experiments.Point {
		return experiments.Point{
			X:        x,
			Fraction: stats.Interval{Mean: y},
			Total:    stats.Interval{Mean: y * x},
		}
	}
	return &experiments.Figure{
		ID: "demo", Title: "demo figure", XLabel: "processors", YLabel: "useful work fraction",
		Series: []experiments.Series{
			{Name: "alpha", Points: []experiments.Point{mk(1024, 0.9), mk(4096, 0.8), mk(16384, 0.7)}},
			{Name: "beta", Points: []experiments.Point{mk(1024, 0.5), mk(4096, 0.4), mk(16384, 0.3)}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	out := Render(demoFigure(), Options{Width: 40, Height: 10, LogX: true})
	for _, want := range []string{"demo figure", "alpha", "beta", "*", "o", "log scale", "useful work fraction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis endpoints in original domain.
	if !strings.Contains(out, "1.02e+03") && !strings.Contains(out, "1024") {
		t.Fatalf("x-axis left endpoint missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderTopBottomValues(t *testing.T) {
	out := Render(demoFigure(), Options{Width: 30, Height: 8})
	if !strings.Contains(out, "0.9") || !strings.Contains(out, "0.3") {
		t.Fatalf("y-axis extremes missing:\n%s", out)
	}
	// The top row must contain the maximum's marker.
	lines := strings.Split(out, "\n")
	if !strings.ContainsRune(lines[1], '*') {
		t.Fatalf("top row lacks the max point:\n%s", out)
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	out := Render(&experiments.Figure{ID: "empty", Title: "nothing"}, Options{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty figure not flagged:\n%s", out)
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	fig := &experiments.Figure{
		ID: "flat", Title: "flat", XLabel: "x", YLabel: "useful work fraction",
		Series: []experiments.Series{{
			Name: "only",
			Points: []experiments.Point{{
				X: 5, Fraction: stats.Interval{Mean: 0.5},
			}},
		}},
	}
	out := Render(fig, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestRenderNonFinitePoints(t *testing.T) {
	mk := func(x, y float64) experiments.Point {
		return experiments.Point{X: x, Fraction: stats.Interval{Mean: y}}
	}
	fig := &experiments.Figure{
		ID: "nanfig", Title: "nan figure", XLabel: "x", YLabel: "useful work fraction",
		Series: []experiments.Series{{
			Name: "mixed",
			Points: []experiments.Point{
				mk(1, 0.5), mk(2, math.NaN()), mk(3, math.Inf(1)),
				mk(math.Inf(-1), 0.4), mk(4, 0.6),
			},
		}},
	}
	// Must not panic, must plot the finite points, and the non-finite ones
	// must not poison the axis bounds.
	out := Render(fig, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("finite points not plotted:\n%s", out)
	}
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("non-finite value leaked into the axes:\n%s", out)
		}
	}

	// All-non-finite degenerates to the empty-figure placeholder.
	fig.Series[0].Points = []experiments.Point{mk(1, math.NaN()), mk(2, math.Inf(1))}
	out = Render(fig, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("all-NaN figure not flagged:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty series → %q, want \"\"", got)
	}
	if got := Sparkline([]float64{1, 2}, 0); got != "" {
		t.Errorf("zero width → %q, want \"\"", got)
	}
	// Single point: one rune, lowest level.
	if got := Sparkline([]float64{5}, 10); got != "▁" {
		t.Errorf("single point → %q, want ▁", got)
	}
	// Flat series: all lowest level, no division-by-zero artifacts.
	if got := Sparkline([]float64{3, 3, 3}, 10); got != "▁▁▁" {
		t.Errorf("flat series → %q", got)
	}
	// Increasing series ends at the top block.
	got := []rune(Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 10))
	if len(got) != 8 || got[0] != '▁' || got[7] != '█' {
		t.Errorf("ramp → %q", string(got))
	}
	// Longer than width: only the newest values remain.
	if got := Sparkline([]float64{9, 9, 9, 0, 1}, 2); len([]rune(got)) != 2 {
		t.Errorf("downsample kept %d runes, want 2: %q", len([]rune(got)), got)
	} else if []rune(got)[1] != '█' {
		t.Errorf("tail of downsampled series wrong: %q", got)
	}
	// NaN/Inf render as blanks and leave the finite scaling intact.
	got = []rune(Sparkline([]float64{0, math.NaN(), 1, math.Inf(1)}, 10))
	if got[1] != ' ' || got[3] != ' ' {
		t.Errorf("non-finite values not blanked: %q", string(got))
	}
	if got[0] != '▁' || got[2] != '█' {
		t.Errorf("finite scaling wrong around NaN: %q", string(got))
	}
	// All-non-finite: blanks only, no panic.
	if got := Sparkline([]float64{math.NaN(), math.Inf(-1)}, 10); got != "  " {
		t.Errorf("all-non-finite → %q, want two blanks", got)
	}
}

func TestRenderOverlapMarker(t *testing.T) {
	mk := func(x, y float64) experiments.Point {
		return experiments.Point{X: x, Fraction: stats.Interval{Mean: y}}
	}
	fig := &experiments.Figure{
		ID: "overlap", Title: "overlap", XLabel: "x", YLabel: "useful work fraction",
		Series: []experiments.Series{
			{Name: "a", Points: []experiments.Point{mk(1, 0.5), mk(2, 0.9)}},
			{Name: "b", Points: []experiments.Point{mk(1, 0.5), mk(2, 0.1)}},
		},
	}
	out := Render(fig, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "?") {
		t.Fatalf("overlapping points not marked:\n%s", out)
	}
}
