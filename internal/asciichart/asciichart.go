// Package asciichart renders experiment figures as plain-text charts so
// the reproduced paper figures can be eyeballed directly in a terminal,
// with per-series markers, optional logarithmic x axes and a legend.
package asciichart

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/experiments"
)

// markers assigns one rune per series, cycling when exhausted.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options controls rendering.
type Options struct {
	// Width and Height are the plot area dimensions in characters
	// (defaults 64×20).
	Width, Height int
	// LogX plots x on a log10 scale — right for processor-count axes.
	LogX bool
}

// Render draws the figure. Empty figures render a placeholder line.
func Render(fig *experiments.Figure, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 64
	}
	if opts.Height <= 0 {
		opts.Height = 20
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", fig.ID, fig.Title)

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	pointCount := 0
	for _, s := range fig.Series {
		for _, p := range s.Points {
			x := xVal(p.X, opts.LogX)
			y := fig.YValue(p)
			// Non-finite points (NaN fractions from empty accumulators,
			// ±Inf half-widths leaking into means) would poison the
			// bounds and index the grid out of range; skip them here and
			// when plotting.
			if !finite(x) || !finite(y) {
				continue
			}
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
			pointCount++
		}
	}
	if pointCount == 0 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]rune, opts.Height)
	for r := range grid {
		grid[r] = make([]rune, opts.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range fig.Series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			x := xVal(p.X, opts.LogX)
			y := fig.YValue(p)
			if !finite(x) || !finite(y) {
				continue
			}
			col := int(math.Round((x - xMin) / (xMax - xMin) * float64(opts.Width-1)))
			row := opts.Height - 1 - int(math.Round((y-yMin)/(yMax-yMin)*float64(opts.Height-1)))
			if grid[row][col] != ' ' && grid[row][col] != mark {
				grid[row][col] = '?' // overlapping series
			} else {
				grid[row][col] = mark
			}
		}
	}

	for r, rowRunes := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", yMax)
		case opts.Height - 1:
			label = fmt.Sprintf("%9.3g ", yMin)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.WriteString(string(rowRunes))
		sb.WriteString("\n")
	}
	sb.WriteString(strings.Repeat(" ", 10))
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", opts.Width))
	sb.WriteString("\n")
	xLeft, xRight := fmtX(xMin, opts.LogX), fmtX(xMax, opts.LogX)
	pad := opts.Width - len(xLeft) - len(xRight)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&sb, "%s%s%s%s\n", strings.Repeat(" ", 11), xLeft, strings.Repeat(" ", pad), xRight)
	fmt.Fprintf(&sb, "           x: %s", fig.XLabel)
	if opts.LogX {
		sb.WriteString(" (log scale)")
	}
	fmt.Fprintf(&sb, " | y: %s\n", fig.YLabel)
	for si, s := range fig.Series {
		fmt.Fprintf(&sb, "           %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// xVal maps an x value onto the plotting scale.
func xVal(x float64, logX bool) float64 {
	if logX && x > 0 {
		return math.Log10(x)
	}
	return x
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// sparkRunes are the eight block levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series of values as one line of block characters —
// the compact trend view cctop uses for convergence and throughput. The
// last `width` values are shown (older ones scroll off); non-finite values
// render as a space; a flat series renders at the lowest level. Returns ""
// for an empty series or non-positive width.
func Sparkline(values []float64, width int) string {
	if width <= 0 || len(values) == 0 {
		return ""
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if finite(v) {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		switch {
		case !finite(v) || hi < lo: // hi < lo: no finite value at all
			out[i] = ' '
		case hi == lo:
			out[i] = sparkRunes[0]
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			out[i] = sparkRunes[idx]
		}
	}
	return string(out)
}

// fmtX renders an axis endpoint in the original (non-log) domain.
func fmtX(v float64, logX bool) string {
	if logX {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}
