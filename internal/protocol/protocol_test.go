package protocol

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cluster"
)

// smallCfg returns a modest system so per-node simulation stays fast.
func smallCfg(nodes int) cluster.Config {
	cfg := cluster.Default()
	cfg.ProcsPerNode = 8
	cfg.Processors = nodes * 8
	cfg.ComputeFraction = 1.0 // isolate pure coordination first
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := cluster.Default()
	bad.Processors = 0
	if _, err := New(bad, 2, 0.001, 1); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(cluster.Default(), 1, 0.001, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := New(cluster.Default(), 2, 0.001, 1); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	s, err := New(smallCfg(64), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Error("zero rounds accepted")
	}
}

// TestCoordinationMatchesMaxOfN is the validation the package exists for:
// with negligible tree latency, the message-level coordination time must
// converge to the lumped SAN's max-of-n-exponentials mean, MTTQ·H_n.
func TestCoordinationMatchesMaxOfN(t *testing.T) {
	const nodes = 2048
	cfg := smallCfg(nodes)
	s, err := New(cfg, 64, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.ExpectedCoordinationTime(nodes, cfg.MTTQ)
	got := sum.Coordination.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("message-level coordination mean %v vs lumped model %v", got, want)
	}
}

// TestTreeLatencyAddsToCoordination: a large hop latency shifts the
// coordination time by about twice the tree depth's worth of hops
// (broadcast down + reduce up).
func TestTreeLatencyAddsToCoordination(t *testing.T) {
	const nodes = 512
	cfg := smallCfg(nodes)
	fast, err := New(cfg, 2, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	hop := cluster.Seconds(5) // absurdly slow links to make the effect visible
	slow, err := New(cfg, 2, hop, 12)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := fast.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := slow.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	diff := ss.Coordination.Mean() - sf.Coordination.Mean()
	if diff <= hop {
		t.Fatalf("tree latency had no visible effect: diff = %v", diff)
	}
}

// TestTimeoutAborts: the message-level abort fraction must match the
// analytic probability 1-(1-e^{-t/MTTQ})^n.
func TestTimeoutAborts(t *testing.T) {
	const nodes = 1024
	cfg := smallCfg(nodes)
	cfg.Timeout = cluster.Seconds(70)
	s, err := New(cfg, 64, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.CoordinationAbortProbability(nodes, cfg.MTTQ, cfg.Timeout)
	if math.Abs(sum.AbortFraction-want) > 0.07 {
		t.Fatalf("abort fraction %v vs analytic %v", sum.AbortFraction, want)
	}
	if sum.AbortFraction > 0 {
		r := s.Round()
		for i := 0; i < 50 && !r.Aborted; i++ {
			r = s.Round()
		}
		if r.Aborted && r.DumpTime != 0 {
			t.Fatal("aborted round should not dump")
		}
	}
}

// TestForegroundIODelaysQuiesce: with a large I/O fraction, rounds start
// later on average because nodes must finish non-preemptive I/O.
func TestForegroundIODelaysQuiesce(t *testing.T) {
	const nodes = 512
	pure := smallCfg(nodes)
	io := pure
	io.ComputeFraction = 0.5 // half the cycle is I/O
	sp, err := New(pure, 64, 0, 14)
	if err != nil {
		t.Fatal(err)
	}
	sio, err := New(io, 64, 0, 14)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sp.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sio.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if q.Coordination.Mean() <= p.Coordination.Mean() {
		t.Fatalf("foreground I/O did not delay coordination: %v vs %v",
			q.Coordination.Mean(), p.Coordination.Mean())
	}
}

func TestRoundFieldsConsistent(t *testing.T) {
	cfg := smallCfg(256)
	s, err := New(cfg, 4, cluster.Seconds(0.001), 15)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Round()
	if r.Aborted {
		t.Fatal("round aborted without a timeout configured")
	}
	if r.CoordinationTime <= 0 {
		t.Fatal("non-positive coordination time")
	}
	if r.DumpTime != cfg.CheckpointDumpTime() {
		t.Fatalf("dump time = %v, want %v", r.DumpTime, cfg.CheckpointDumpTime())
	}
	if r.TotalTime < r.CoordinationTime+r.DumpTime {
		t.Fatal("total time smaller than its parts")
	}
	if r.SlowestNode < 0 || r.SlowestNode >= cfg.Nodes() {
		t.Fatalf("slowest node index %d out of range", r.SlowestNode)
	}
}
