// Package protocol is a message-level discrete-event simulation of the
// six-step coordinated checkpointing protocol of Section 3.2: the master
// broadcasts 'quiesce' over the interconnect tree, every compute node
// finishes any non-preemptive foreground I/O, quiesces after its own
// exponential quiesce time, and replies 'ready' up the reduction tree; the
// master then broadcasts 'checkpoint', the nodes dump state to their shared
// I/O nodes, and 'done'/'proceed' complete the round.
//
// The paper's composed SAN abstracts all of this into a single max-of-n
// coordination activity (Section 5); this simulator exists to validate that
// abstraction: for tree latencies in the Table 3 range, the measured
// coordination time converges to MTTQ·H_n plus the (tiny) tree latency.
package protocol

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RoundResult describes one simulated checkpoint round.
type RoundResult struct {
	// CoordinationTime is the time from the master's 'quiesce' broadcast
	// until the last 'ready' reaches the master.
	CoordinationTime float64
	// Aborted reports whether the master's timeout expired first.
	Aborted bool
	// DumpTime is the checkpoint dump duration (0 when aborted).
	DumpTime float64
	// TotalTime is the full protocol duration: coordination (or timeout)
	// plus broadcast legs and dump.
	TotalTime float64
	// SlowestNode is the index of the last node to report ready.
	SlowestNode int
}

// Simulator drives checkpoint rounds at per-node message granularity.
type Simulator struct {
	cfg  cluster.Config
	tree netsim.Tree
	cyc  workload.Cycle
	src  rng.Source
}

// New validates inputs and returns a protocol simulator. The tree spans the
// compute nodes; the master is node 0.
func New(cfg cluster.Config, fanout int, hopLatency float64, seed uint64) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	tree, err := netsim.NewTree(cfg.Nodes(), fanout, hopLatency)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	cyc, err := workload.NewCycle(cfg.IOComputeCyclePeriod, cfg.ComputeFraction)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	return &Simulator{cfg: cfg, tree: tree, cyc: cyc, src: rng.New(seed)}, nil
}

// Round simulates one checkpoint round starting at a random point of every
// node's application cycle.
func (s *Simulator) Round() RoundResult {
	eng := des.New()
	n := s.cfg.Nodes()
	quiesce := rng.Exponential{MeanValue: s.cfg.MTTQ}

	var (
		readyAt = 0.0
		slowest = 0
	)

	for i := 0; i < n; i++ {
		i := i
		recv := s.tree.BroadcastLatency(i)
		// Each node sits at an independent uniform point of its
		// compute/IO cycle; a node in foreground I/O must finish it
		// before quiescing (Section 3.3).
		ioWait := 0.0
		if phase, rem := s.cyc.PhaseAt(s.src.Float64() * s.cyc.Period); phase == workload.IO {
			ioWait = rem
		}
		eng.Schedule(recv+ioWait, "quiesce", func(e *des.Engine) {
			d := quiesce.Sample(s.src)
			e.ScheduleAfter(d+s.tree.ReduceLatency(i), "ready", func(e *des.Engine) {
				if e.Now() > readyAt {
					readyAt = e.Now()
					slowest = i
				}
			})
		})
	}
	eng.Run()

	res := RoundResult{CoordinationTime: readyAt, SlowestNode: slowest}
	if s.cfg.Timeout > 0 && readyAt > s.cfg.Timeout {
		res.Aborted = true
		res.TotalTime = s.cfg.Timeout + s.tree.FullBroadcastLatency()
		return res
	}
	res.DumpTime = s.cfg.CheckpointDumpTime()
	res.TotalTime = readyAt + s.tree.FullBroadcastLatency() + res.DumpTime
	return res
}

// Summary aggregates many rounds.
type Summary struct {
	// Coordination is the distribution of coordination times.
	Coordination stats.Accumulator
	// AbortFraction is the fraction of rounds aborted by the timeout.
	AbortFraction float64
	// Rounds is the number of simulated rounds.
	Rounds int
}

// Run simulates rounds checkpoint rounds and aggregates them.
func (s *Simulator) Run(rounds int) (Summary, error) {
	if rounds <= 0 {
		return Summary{}, fmt.Errorf("protocol: rounds %d must be positive", rounds)
	}
	var sum Summary
	aborts := 0
	for i := 0; i < rounds; i++ {
		r := s.Round()
		sum.Coordination.Add(r.CoordinationTime)
		if r.Aborted {
			aborts++
		}
	}
	sum.Rounds = rounds
	sum.AbortFraction = float64(aborts) / float64(rounds)
	return sum, nil
}
