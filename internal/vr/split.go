package vr

import (
	"fmt"

	"repro/internal/rng"
)

// Trajectory is one replayable sample path as the splitting driver sees it:
// a deterministic function of its seed history that exposes an importance
// level (a running maximum, so crossings are monotone). model.RareTrajectory
// adapts the checkpointing SAN; tests use toy walks.
type Trajectory interface {
	// Prime rewinds to t = 0 under the given root seed.
	Prime(seed uint64)
	// Step advances by one event; false means the path is exhausted.
	Step() bool
	// Now returns the current path time.
	Now() float64
	// Level returns the highest importance level reached so far.
	Level() int
	// Reseed swaps the future randomness without touching current state —
	// the branch operation of splitting.
	Reseed(seed uint64)
}

// SplitOptions configures a fixed-effort multilevel splitting estimate of
// P[trajectory reaches Level before Horizon].
type SplitOptions struct {
	// Level is the target importance level (≥ 1).
	Level int
	// Effort is the number of trials per stage (≥ 2).
	Effort int
	// Horizon is the time budget of one trajectory.
	Horizon float64
	// Seed drives the driver's own randomness (root seeds, branch seeds,
	// entrance selection). Identical options give identical estimates.
	Seed uint64
}

// SplitResult is a fixed-effort splitting estimate.
type SplitResult struct {
	// Probability is the product of the per-stage crossing fractions — an
	// unbiased estimate of the rare-event probability.
	Probability float64 `json:"probability"`
	// StageFractions are the per-stage conditional crossing estimates
	// P[reach level k+1 | entered level k].
	StageFractions []float64 `json:"stage_fractions"`
	// Entrances is the number of successful crossings observed per stage.
	Entrances []int `json:"entrances"`
	// Trials is the total number of stage trials run (Effort × stages
	// attempted).
	Trials int `json:"trials"`
	// Steps counts every Trajectory.Step taken, including replay work — the
	// honest cost of the estimate.
	Steps uint64 `json:"steps"`
}

// path is a replayable trajectory prefix: prime with root, then at each
// recorded branch point (a total-step count) swap in the branch seed. The
// final crossSteps is where the entrance's level crossing happened.
type path struct {
	root       uint64
	branches   []branch
	crossSteps uint64
}

type branch struct {
	afterSteps uint64
	seed       uint64
}

// SplitEstimate runs fixed-effort multilevel splitting on tr. Stage 0 runs
// Effort fresh trajectories to the first level crossing; each later stage
// picks entrance paths uniformly at random, replays them deterministically
// to their crossing (same seeds → same path), branches the randomness with
// a fresh seed, and continues toward the next level. The product of stage
// fractions is returned; a stage with zero crossings short-circuits to
// probability zero. The whole procedure is deterministic in opts.Seed.
//
// The trajectory's state at a crossing is reconstructed by replay rather
// than copied: the SAN simulator has no snapshot operation, but it is
// bit-deterministic in its seed history, which makes replay an exact (if
// costlier) substitute — the Steps field reports that cost.
func SplitEstimate(tr Trajectory, opts SplitOptions) (SplitResult, error) {
	if opts.Level < 1 {
		return SplitResult{}, fmt.Errorf("vr: split level must be >= 1, got %d", opts.Level)
	}
	if opts.Effort < 2 {
		return SplitResult{}, fmt.Errorf("vr: split effort must be >= 2, got %d", opts.Effort)
	}
	if !(opts.Horizon > 0) {
		return SplitResult{}, fmt.Errorf("vr: split horizon must be positive, got %v", opts.Horizon)
	}
	// Independent driver streams: seeds for trajectories/branches, and
	// entrance selection. Selection must be uniform over entrances for the
	// fixed-effort estimator to stay unbiased when Effort is not a multiple
	// of the entrance count.
	seedSrc := rng.New(opts.Seed ^ 0x73706c6974736565) // "splitsee"
	selSrc := rng.New(opts.Seed ^ 0x73656c6563743031)  // "select01"

	res := SplitResult{Probability: 1}
	var entrances []path
	for stage := 0; stage < opts.Level; stage++ {
		target := stage + 1
		var next []path
		crossed := 0
		for trial := 0; trial < opts.Effort; trial++ {
			res.Trials++
			var p path
			if stage == 0 {
				p = path{root: seedSrc.Uint64()}
				tr.Prime(p.root)
			} else {
				p = entrances[selSrc.Intn(len(entrances))]
				replaySteps := replay(tr, p)
				res.Steps += replaySteps
				b := branch{afterSteps: p.crossSteps, seed: seedSrc.Uint64()}
				tr.Reseed(b.seed)
				p = path{root: p.root, branches: appendBranch(p.branches, b), crossSteps: p.crossSteps}
			}
			steps, ok := runToLevel(tr, target, opts.Horizon, p.crossSteps, &res.Steps)
			if !ok {
				continue
			}
			crossed++
			p.crossSteps = steps
			next = append(next, p)
		}
		frac := float64(crossed) / float64(opts.Effort)
		res.StageFractions = append(res.StageFractions, frac)
		res.Entrances = append(res.Entrances, crossed)
		res.Probability *= frac
		if crossed == 0 {
			res.Probability = 0
			break
		}
		entrances = next
	}
	return res, nil
}

// appendBranch copies-and-appends so sibling trials sharing an entrance
// never alias each other's branch history.
func appendBranch(bs []branch, b branch) []branch {
	out := make([]branch, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = b
	return out
}

// replay reconstructs the trajectory state at p's crossing: prime with the
// root seed, step to each branch point applying its seed, then step on to
// crossSteps. Returns the steps spent.
func replay(tr Trajectory, p path) uint64 {
	tr.Prime(p.root)
	var steps uint64
	next := 0
	for steps < p.crossSteps {
		for next < len(p.branches) && p.branches[next].afterSteps == steps {
			tr.Reseed(p.branches[next].seed)
			next++
		}
		if !tr.Step() {
			break
		}
		steps++
	}
	return steps
}

// runToLevel advances tr until it reaches target level (success), exceeds
// the horizon, or exhausts. from is the step count already taken (replayed);
// the returned count is the total at the crossing. total accumulates every
// step taken into the caller's cost counter.
func runToLevel(tr Trajectory, target int, horizon float64, from uint64, total *uint64) (uint64, bool) {
	steps := from
	if tr.Level() >= target && tr.Now() <= horizon {
		return steps, true
	}
	for {
		if !tr.Step() {
			return steps, false
		}
		steps++
		*total++
		if tr.Now() > horizon {
			return steps, false
		}
		if tr.Level() >= target {
			return steps, true
		}
	}
}

// BruteForce estimates the same probability by plain Monte Carlo: effort
// independent trajectories, counting those that reach level before horizon.
// It shares SplitEstimate's seeding discipline so the two are comparable
// like for like, and serves as the unbiasedness pin for the splitting
// driver.
func BruteForce(tr Trajectory, opts SplitOptions) (SplitResult, error) {
	if opts.Level < 1 {
		return SplitResult{}, fmt.Errorf("vr: level must be >= 1, got %d", opts.Level)
	}
	if opts.Effort < 1 {
		return SplitResult{}, fmt.Errorf("vr: effort must be >= 1, got %d", opts.Effort)
	}
	if !(opts.Horizon > 0) {
		return SplitResult{}, fmt.Errorf("vr: horizon must be positive, got %v", opts.Horizon)
	}
	seedSrc := rng.New(opts.Seed ^ 0x73706c6974736565)
	res := SplitResult{}
	crossed := 0
	for trial := 0; trial < opts.Effort; trial++ {
		res.Trials++
		tr.Prime(seedSrc.Uint64())
		if _, ok := runToLevel(tr, opts.Level, opts.Horizon, 0, &res.Steps); ok {
			crossed++
		}
	}
	res.Probability = float64(crossed) / float64(opts.Effort)
	res.StageFractions = []float64{res.Probability}
	res.Entrances = []int{crossed}
	return res, nil
}
