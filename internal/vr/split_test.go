package vr

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// walk is a toy Trajectory: a biased ±1 random walk whose importance level
// is the running maximum position. Deterministic in its seed history, like
// the SAN trajectories the driver really runs.
type walk struct {
	p   float64 // P[step up]
	src *rng.Stream
	pos int
	max int
	t   float64
}

func newWalk(p float64) *walk { return &walk{p: p, src: rng.New(0)} }

func (w *walk) Prime(seed uint64) {
	w.src.Reseed(seed)
	w.pos, w.max, w.t = 0, 0, 0
}

func (w *walk) Step() bool {
	if w.src.Float64() < w.p {
		w.pos++
	} else {
		w.pos--
	}
	if w.pos > w.max {
		w.max = w.pos
	}
	w.t++
	return true
}

func (w *walk) Now() float64       { return w.t }
func (w *walk) Level() int         { return w.max }
func (w *walk) Reseed(seed uint64) { w.src.Reseed(seed) }

func TestSplitEstimateDeterministic(t *testing.T) {
	opts := SplitOptions{Level: 4, Effort: 100, Horizon: 50, Seed: 7}
	a, err := SplitEstimate(newWalk(0.35), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitEstimate(newWalk(0.35), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Probability != b.Probability || a.Steps != b.Steps || a.Trials != b.Trials {
		t.Fatalf("same options, different results: %+v vs %+v", a, b)
	}
	if len(a.StageFractions) != 4 {
		t.Fatalf("want 4 stage fractions, got %v", a.StageFractions)
	}
}

// The tentpole pin: fixed-effort splitting must agree with brute force in
// expectation. A large brute-force run fixes the reference; the mean of
// many independent splitting estimates must land inside a generous CI of
// its own spread around that reference.
func TestSplitEstimateUnbiasedVsBruteForce(t *testing.T) {
	const level = 7
	w := newWalk(0.35)
	ref, err := BruteForce(w, SplitOptions{Level: level, Effort: 400000, Horizon: 60, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Probability <= 0 || ref.Probability > 0.05 {
		t.Fatalf("reference probability %v not in the rare band this test assumes", ref.Probability)
	}
	var acc stats.Accumulator
	for k := 0; k < 120; k++ {
		est, err := SplitEstimate(w, SplitOptions{Level: level, Effort: 300, Horizon: 60, Seed: uint64(1000 + k)})
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(est.Probability)
	}
	// 99.9%-ish band: 4 standard errors plus the reference's own noise.
	refSE := math.Sqrt(ref.Probability * (1 - ref.Probability) / 400000)
	tol := 4*acc.StdErr() + 4*refSE
	if diff := math.Abs(acc.Mean() - ref.Probability); diff > tol {
		t.Fatalf("splitting mean %v vs brute force %v: |Δ| = %v exceeds tolerance %v",
			acc.Mean(), ref.Probability, diff, tol)
	}
}

// Splitting must resolve events far too rare for an equal-trial brute-force
// run: at walk parameters where p_hit ~ 1e-6, a 3000-trial brute force
// almost surely reports zero while splitting still produces a positive,
// sane estimate.
func TestSplitEstimateReachesRareLevels(t *testing.T) {
	w := newWalk(0.3)
	opts := SplitOptions{Level: 9, Effort: 1000, Horizon: 200, Seed: 5}
	est, err := SplitEstimate(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Probability <= 0 {
		t.Fatalf("splitting found no path to level %d; stage fractions %v", opts.Level, est.StageFractions)
	}
	if est.Probability > 1e-3 {
		t.Fatalf("probability %v implausibly large for level %d of a 0.3-up walk", est.Probability, opts.Level)
	}
	brute, err := BruteForce(w, SplitOptions{Level: 9, Effort: 3000, Horizon: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if brute.Probability != 0 {
		t.Logf("brute force got lucky: %v", brute.Probability)
	}
}

func TestSplitEstimateZeroStageShortCircuits(t *testing.T) {
	// An always-down walk can never climb: stage 0 crosses nothing.
	est, err := SplitEstimate(newWalk(0), SplitOptions{Level: 3, Effort: 50, Horizon: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Probability != 0 {
		t.Fatalf("impossible event estimated at %v", est.Probability)
	}
	if len(est.StageFractions) != 1 || est.StageFractions[0] != 0 {
		t.Fatalf("want short-circuit after stage 0, got fractions %v", est.StageFractions)
	}
}

func TestSplitOptionValidation(t *testing.T) {
	w := newWalk(0.5)
	if _, err := SplitEstimate(w, SplitOptions{Level: 0, Effort: 10, Horizon: 1}); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := SplitEstimate(w, SplitOptions{Level: 1, Effort: 1, Horizon: 1}); err == nil {
		t.Error("effort 1 accepted")
	}
	if _, err := SplitEstimate(w, SplitOptions{Level: 1, Effort: 10, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := BruteForce(w, SplitOptions{Level: 1, Effort: 0, Horizon: 1}); err == nil {
		t.Error("brute force effort 0 accepted")
	}
}

func TestModeParseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeNone}, {"none", ModeNone}, {"antithetic", ModeAntithetic}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if ModeAntithetic.String() != "antithetic" || ModeNone.String() != "none" {
		t.Error("mode String round trip broken")
	}
}

func TestBuildSyncReport(t *testing.T) {
	names := []string{"fail", "rec"}
	drawsA := [][]uint64{{3, 1}, {4, 2}, {5, 1}}
	drawsB := [][]uint64{{3, 1}, {4, 9}, {5, 1}}
	outA := []float64{0.90, 0.91, 0.92}
	outB := []float64{0.80, 0.81, 0.82}
	rep := BuildSyncReport(names, drawsA, drawsB, outA, outB)
	if rep.Pairs != 3 {
		t.Fatalf("pairs = %d", rep.Pairs)
	}
	if math.Abs(rep.InSyncFraction-2.0/3) > 1e-12 {
		t.Fatalf("in-sync fraction = %v, want 2/3", rep.InSyncFraction)
	}
	if rep.Components[0].MatchedPairs != 3 || rep.Components[1].MatchedPairs != 2 {
		t.Fatalf("component matches = %+v", rep.Components)
	}
	if rep.OutputCorrelation < 0.99 {
		t.Fatalf("perfectly correlated outputs scored %v", rep.OutputCorrelation)
	}
	if rep.CIShrinkFactor < 100 {
		t.Fatalf("constant difference should shrink CI hugely, got %v", rep.CIShrinkFactor)
	}
}
