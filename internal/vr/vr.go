// Package vr is the variance-reduction layer: antithetic-variates modes and
// reporting for runner.Estimate, the common-random-numbers synchronization
// audit for runner.Compare, and a fixed-effort multilevel importance-
// splitting driver for rare-event probabilities (DESIGN.md §19).
//
// The package holds the mode vocabulary, the measured-efficiency reports
// and the splitting algorithm; the pairing itself lives where determinism
// is decided — seeds are assigned to (plain, reflected) pairs inside block
// planning (internal/blocks), and the reflected routing inside the model
// (model.Instance.SetVR) — so block-sharded sweeps stay bit-identical to
// monolithic runs at any worker count.
package vr

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Mode selects the variance-reduction scheme of an estimate.
type Mode int

const (
	// ModeNone is plain Monte Carlo — one independent replication per seed.
	ModeNone Mode = iota
	// ModeAntithetic schedules replications as (plain, reflected) pairs
	// sharing a seed and estimates from the pair means.
	ModeAntithetic
)

// ParseMode parses a -vr flag value. The empty string means ModeNone.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "none":
		return ModeNone, nil
	case "antithetic":
		return ModeAntithetic, nil
	default:
		return ModeNone, fmt.Errorf("vr: unknown mode %q (want none or antithetic)", s)
	}
}

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeAntithetic:
		return "antithetic"
	default:
		return "none"
	}
}

// Report is the measured outcome of an antithetic estimate, carried in
// runner.Result and the journal's estimate record. The factor is measured,
// not assumed: s²_leg / (2·s²_pair), the ratio of the variance a plain-MC
// estimate of the same replication budget would have to the variance the
// paired estimate achieved.
type Report struct {
	Mode string `json:"mode"`
	// Pairs is the number of (plain, reflected) pairs folded in.
	Pairs int `json:"pairs"`
	// Factor is the measured variance-reduction factor (≥ 0; ≈ 1 means the
	// pairing neither helped nor hurt). Build reports through NewReport,
	// which clamps a +Inf factor (degenerate zero pair variance) to
	// MaxFloat64 so the record stays JSON-encodable.
	Factor float64 `json:"factor"`
	// LegCorrelation is the sample correlation between the two legs of a
	// pair; effective reflection drives it negative.
	LegCorrelation float64 `json:"leg_correlation"`
	// PairVariance and LegVariance are the unbiased sample variances the
	// factor is computed from.
	PairVariance float64 `json:"pair_variance"`
	LegVariance  float64 `json:"leg_variance"`
}

// NewReport builds a Report from measured pair statistics, clamping
// non-finite values so the report always survives encoding/json (which
// rejects ±Inf and NaN).
func NewReport(mode Mode, pairs int, factor, legCorr, pairVar, legVar float64) *Report {
	return &Report{
		Mode:           mode.String(),
		Pairs:          pairs,
		Factor:         clampJSON(factor),
		LegCorrelation: clampJSON(legCorr),
		PairVariance:   clampJSON(pairVar),
		LegVariance:    clampJSON(legVar),
	}
}

// clampJSON maps non-finite values onto the finite double range so every
// report field survives encoding/json.
func clampJSON(f float64) float64 {
	switch {
	case math.IsNaN(f):
		return 0
	case math.IsInf(f, 1):
		return math.MaxFloat64
	case math.IsInf(f, -1):
		return -math.MaxFloat64
	}
	return f
}

// SyncReport quantifies how well two compared configurations stayed on
// common random numbers: per-purpose draw-count alignment plus the paired
// output correlation that CRN is supposed to induce.
type SyncReport struct {
	// Pairs is the number of (config A, config B) replication pairs.
	Pairs int `json:"pairs"`
	// InSyncFraction is the fraction of pairs whose draw counts matched on
	// every purpose — pairs where the two configs consumed literally the
	// same variates for the same purposes.
	InSyncFraction float64 `json:"in_sync_fraction"`
	// OutputCorrelation is the sample correlation of the paired outputs;
	// positive correlation is what shrinks the CI of the difference.
	OutputCorrelation float64 `json:"output_correlation"`
	// CIShrinkFactor is (Var A + Var B) / Var(A−B): the factor by which
	// pairing shrank the difference's variance versus independent runs
	// (> 1 means CRN helped; 1 means no effect).
	CIShrinkFactor float64 `json:"ci_shrink_factor"`
	// Components break the audit down per random purpose.
	Components []ComponentSync `json:"components"`
}

// ComponentSync is the per-purpose slice of a SyncReport.
type ComponentSync struct {
	Name string `json:"name"`
	// MeanDrawsA/B are the mean variates consumed per replication.
	MeanDrawsA float64 `json:"mean_draws_a"`
	MeanDrawsB float64 `json:"mean_draws_b"`
	// MatchedPairs counts pairs whose draw counts were equal on this
	// purpose.
	MatchedPairs int `json:"matched_pairs"`
}

// BuildSyncReport assembles the audit from per-replication draw counts
// (index-aligned with names) and paired outputs. Slices drawsA/drawsB and
// outA/outB must have equal lengths.
func BuildSyncReport(names []string, drawsA, drawsB [][]uint64, outA, outB []float64) SyncReport {
	rep := SyncReport{Pairs: len(outA)}
	n := len(outA)
	if n == 0 {
		return rep
	}
	rep.Components = make([]ComponentSync, len(names))
	for i, name := range names {
		rep.Components[i].Name = name
	}
	allMatched := 0
	for r := 0; r < n; r++ {
		matched := true
		for p := range names {
			var a, b uint64
			if r < len(drawsA) && p < len(drawsA[r]) {
				a = drawsA[r][p]
			}
			if r < len(drawsB) && p < len(drawsB[r]) {
				b = drawsB[r][p]
			}
			c := &rep.Components[p]
			c.MeanDrawsA += float64(a) / float64(n)
			c.MeanDrawsB += float64(b) / float64(n)
			if a == b {
				c.MatchedPairs++
			} else {
				matched = false
			}
		}
		if matched {
			allMatched++
		}
	}
	rep.InSyncFraction = float64(allMatched) / float64(n)
	rep.OutputCorrelation = clampJSON(correlation(outA, outB))
	rep.CIShrinkFactor = clampJSON(ciShrink(outA, outB))
	return rep
}

// correlation returns the sample Pearson correlation (0 on degenerate
// input).
func correlation(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var vxx, vyy, vxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		vxx += dx * dx
		vyy += dy * dy
		vxy += dx * dy
	}
	if vxx == 0 || vyy == 0 {
		return 0
	}
	return vxy / math.Sqrt(vxx*vyy)
}

// ciShrink returns (Var A + Var B) / Var(A−B), the variance advantage of
// paired differencing (1 on degenerate input, +Inf when the paired
// difference is exactly constant).
func ciShrink(xs, ys []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	var ax, ay, ad stats.Accumulator
	for i := range xs {
		ax.Add(xs[i])
		ay.Add(ys[i])
		ad.Add(xs[i] - ys[i])
	}
	indep := ax.Variance() + ay.Variance()
	paired := ad.Variance()
	if paired == 0 {
		if indep == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return indep / paired
}
