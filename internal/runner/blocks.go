package runner

// This file is the glue between the estimation loop and the
// internal/blocks sweep engine. PlanGrid turns a multi-cell sweep into a
// content-hashed manifest, BlockRunner executes one claimed block with
// exactly the record schema the monolithic journal writer uses, and
// EstimateGrid is the monolithic mode — the whole plan claimed and reduced
// inside one process, which is what ccsweep and the experiments grid run
// and what the distributed path must reproduce bit for bit.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/vr"
)

// PlanGrid builds the estimate-kind manifest for a multi-cell sweep.
// Each cell carries its own root seed and replication count; the windows
// and confidence level come from opts (after defaulting, so the manifest
// records the values that actually run). blockSize ≤ 0 plans one block
// per replication — the finest claiming granularity.
func PlanGrid(name string, cells []blocks.Cell, blockSize int, opts Options) (*blocks.Manifest, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	// Cells that leave Replications unset inherit the (defaulted) option,
	// so callers spell the replication count once.
	planned := make([]blocks.Cell, len(cells))
	copy(planned, cells)
	for i := range planned {
		if planned[i].Replications == 0 {
			planned[i].Replications = opts.Replications
		}
	}
	return blocks.Plan(planned, blocks.PlanOptions{
		Name:       name,
		Kind:       blocks.KindEstimate,
		Warmup:     opts.Warmup,
		Measure:    opts.Measure,
		Confidence: opts.Confidence,
		BlockSize:  blockSize,
		VR:         vrString(opts.VarianceReduction),
	})
}

// BlockRunner returns the estimate-kind blocks.RunFunc: it executes one
// claimed block's replications with the seeds the manifest pre-assigned
// and hands back records built by the same repFields the monolithic
// journal writer uses — which is the whole byte-identity argument at the
// record level. workers bounds in-block parallelism (0/1 sequential,
// negative one per CPU); metrics, when non-nil, receives the same
// runner.*/des.* telemetry a monolithic run records.
func BlockRunner(workers int, metrics *obs.Registry) blocks.RunFunc {
	return func(ctx context.Context, m *blocks.Manifest, b blocks.Block) (blocks.BlockOutput, error) {
		if m.Kind != blocks.KindEstimate {
			return blocks.BlockOutput{}, fmt.Errorf("runner: cannot run %q blocks", m.Kind)
		}
		cell := m.Cells[b.CellIndex]
		mode, err := vr.ParseMode(m.VR)
		if err != nil {
			return blocks.BlockOutput{}, fmt.Errorf("runner: %w", err)
		}
		opts := Options{
			Replications:      b.Reps(),
			Warmup:            m.Warmup,
			Measure:           m.Measure,
			Confidence:        m.Confidence,
			Seed:              cell.Seed,
			Workers:           workers,
			Metrics:           metrics,
			Label:             cell.Label,
			VarianceReduction: mode,
			forceSim:          true,
		}.withDefaults()
		antithetic := mode == vr.ModeAntithetic
		var events atomic.Uint64
		start := time.Now()
		outs, err := exec.MapLocal(ctx, pool(opts, &events), b.Reps(), newInstanceCache,
			func(_ context.Context, cache *instanceCache, i int) (repOut, error) {
				// The leg is the cell-global replication parity — the same
				// rule the monolithic loop applies — so a block worker runs
				// exactly the leg the plan assigned, wherever the block
				// boundary fell (the planner keeps RepStart even under VR).
				o, err := runOne(cell.Config, b.Seeds[i], antithetic && (b.RepStart+i)%2 == 1, opts, cache)
				events.Add(o.fired)
				return o, err
			})
		if err != nil {
			return blocks.BlockOutput{}, err
		}
		out := blocks.BlockOutput{Records: make([]blocks.Record, len(outs))}
		for i, o := range outs {
			out.Events += o.fired
			// rep is the cell-global replication index, so merged journals
			// number replications exactly as a monolithic run does.
			out.Records[i] = blocks.Record{
				Kind:   "replication",
				Fields: repFields(b.RepStart+i, b.Seeds[i], o, opts),
			}
		}
		// Publish the block's event rate the same way recordEstimate does
		// for monolithic runs, so worker heartbeats and -debug-addr
		// dashboards get a live runner.events_per_sec in distributed mode.
		if metrics != nil {
			if dt := time.Since(start).Seconds(); dt > 0 {
				metrics.FloatGauge("runner.events_per_sec").Set(float64(out.Events) / dt)
			}
		}
		return out, nil
	}
}

// CellError tags a grid-cell failure with the cell's identity so sweep
// frontends can report which point of the grid failed.
type CellError struct {
	Index int
	Label string
	X     float64
	Err   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %d (%s): %v", e.Index, e.Label, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// EstimateGrid runs every cell of an estimate manifest inside this
// process — monolithic mode: the plan is claimed whole and reduced in
// manifest order, no run directory involved. Cells fan out on an exec
// pool with opts.Workers workers; each cell's replications run
// sequentially inside its job, so the grid is the unit of parallelism and
// results are bit-identical for every worker count. cellOpts, when
// non-nil, refines the per-cell Options after the manifest values are
// applied — sweeps use it to attach per-cell journals and labels. Cell
// failures are reported as *CellError.
func EstimateGrid(ctx context.Context, m *blocks.Manifest, opts Options, cellOpts func(ci int, o Options) Options) ([]Result, error) {
	if m.Kind != blocks.KindEstimate {
		return nil, fmt.Errorf("runner: cannot estimate %q manifest", m.Kind)
	}
	opts = opts.withDefaults()
	gridMode, err := vr.ParseMode(m.VR)
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	p := exec.Pool{Workers: exec.WorkerCount(opts.Workers), Metrics: opts.Metrics}
	return exec.Map(ctx, p, len(m.Cells), func(ctx context.Context, ci int) (Result, error) {
		cell := m.Cells[ci]
		o := opts
		o.Replications = cell.Replications
		o.Seed = cell.Seed
		o.Warmup = m.Warmup
		o.Measure = m.Measure
		o.Confidence = m.Confidence
		o.Label = cell.Label
		o.VarianceReduction = gridMode
		o.Workers = 1 // the grid is already parallel; don't oversubscribe
		o.Progress = nil
		// Cells complete in scheduling order, so a journal shared across
		// cells would interleave nondeterministically; cellOpts may attach a
		// per-cell journal (ccsweep buffers one per row).
		o.Journal = nil
		if cellOpts != nil {
			o = cellOpts(ci, o)
		}
		res, err := EstimateContext(ctx, cell.Config, o)
		if err != nil {
			return Result{}, &CellError{Index: ci, Label: cell.Label, X: cell.X, Err: err}
		}
		return res, nil
	})
}
