package runner

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestCompareIdenticalConfigsGivesZeroDiff(t *testing.T) {
	cfg := cluster.Default()
	c, err := Compare(cfg, cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Common random numbers on identical configs give bit-identical
	// trajectories, so the paired difference is exactly zero.
	if c.FractionDiff.Mean != 0 || c.FractionDiff.HalfWide != 0 {
		t.Fatalf("identical configs diff = %v", c.FractionDiff)
	}
	if c.Significant() {
		t.Fatal("identical configs flagged significant")
	}
}

func TestCompareDetectsBlockingWriteCheaply(t *testing.T) {
	// The blocking-write ablation costs ~3% fraction; with CRN pairing,
	// even 3 short replications resolve it significantly.
	a := cluster.Default()
	b := a
	b.BlockingCheckpointWrite = true
	c, err := Compare(a, b, Options{Replications: 3, Warmup: 100, Measure: 800, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Significant() {
		t.Fatalf("blocking-write effect not resolved: %v", c.FractionDiff)
	}
	if c.FractionDiff.Mean >= 0 {
		t.Fatalf("blocking write should reduce the fraction: %v", c.FractionDiff)
	}
	// Pairing must shrink the interval versus the independent estimates.
	indep := c.A.UsefulWorkFraction.HalfWide + c.B.UsefulWorkFraction.HalfWide
	if c.FractionDiff.HalfWide > indep {
		t.Fatalf("paired CI %v wider than unpaired sum %v", c.FractionDiff.HalfWide, indep)
	}
}

func TestCompareTotalsTrackFractions(t *testing.T) {
	a := cluster.Default()
	b := a
	b.MTTFPerNode = cluster.Years(4)
	c, err := Compare(a, b, Options{Replications: 3, Warmup: 100, Measure: 600, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if c.FractionDiff.Mean <= 0 {
		t.Fatalf("4x MTTF should improve the fraction: %v", c.FractionDiff)
	}
	wantTotal := c.FractionDiff.Mean * float64(a.Processors)
	if math.Abs(c.TotalDiff.Mean-wantTotal)/wantTotal > 1e-9 {
		t.Fatalf("total diff %v inconsistent with fraction diff %v", c.TotalDiff.Mean, wantTotal)
	}
}

func TestCompareValidation(t *testing.T) {
	bad := cluster.Default()
	bad.Processors = 0
	if _, err := Compare(bad, cluster.Default(), quickOpts()); err == nil {
		t.Error("invalid config A accepted")
	}
	if _, err := Compare(cluster.Default(), bad, quickOpts()); err == nil {
		t.Error("invalid config B accepted")
	}
	if _, err := Compare(cluster.Default(), cluster.Default(), Options{Replications: -1, Measure: 1, Confidence: 0.9}); err == nil {
		t.Error("invalid options accepted")
	}
}
