package runner

import (
	"repro/internal/cluster"
	"repro/internal/model"
)

// instanceCache is the per-worker model cache behind Estimate and Compare:
// each exec worker builds an Instance once per configuration and recycles
// it for every subsequent replication it claims, so the SAN graph, the
// dependency index and the engine's event pool are constructed once per
// worker instead of once per replication. cluster.Config is a comparable
// value type of plain scalars, so it keys the map directly.
//
// The cache never influences results: Instance.Recycle is pinned
// bit-identical to a fresh build (model's TestRecycleMatchesFreshBuild),
// and seeds are pre-assigned per replication, so which worker — and
// therefore which cached instance — runs a replication is invisible in
// every output. The runner's worker-invariance tests cover exactly this.
// Caches are worker-local (created via exec.MapLocal), so no locking.
type instanceCache struct {
	byCfg map[cluster.Config]*model.Instance
}

func newInstanceCache() *instanceCache {
	return &instanceCache{byCfg: make(map[cluster.Config]*model.Instance)}
}

// instance returns an instance of cfg rewound to seed, recycling a cached
// one when the worker has built this configuration before. reflected runs
// the replication as the antithetic leg of its pair; crn routes every
// stochastic purpose through its own labelled sub-stream (the Compare
// synchronization audit). Both act through model.Instance.SetVR, which
// takes effect on the next Recycle — so a fresh build under either flag is
// immediately recycled onto its own seed, and a plain replication on a
// cached instance clears the flags first (a pinned no-op for the
// trajectory: model's TestSetVROffIsBitTransparent).
func (c *instanceCache) instance(cfg cluster.Config, seed uint64, reflected, crn bool) (in *model.Instance, recycled bool, err error) {
	if in, ok := c.byCfg[cfg]; ok {
		in.SetVR(reflected, crn)
		in.Recycle(seed)
		return in, true, nil
	}
	in, err = model.New(cfg, seed)
	if err != nil {
		return nil, false, err
	}
	c.byCfg[cfg] = in
	if reflected || crn {
		in.SetVR(reflected, crn)
		in.Recycle(seed)
	}
	return in, false, nil
}
