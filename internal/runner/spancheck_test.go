package runner

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// failing returns a config with failures frequent enough that the check
// exercises rollbacks, recoveries and (sometimes) reboots in a short window.
func failing() cluster.Config {
	cfg := cluster.Default()
	cfg.MTTFPerNode = cluster.Years(10)
	return cfg
}

// TestVerifySpansAgreement is the issue's acceptance check at the runner
// level: span-derived useful work matches the reward estimate within the
// CI half-width for the base, timeout and correlated variants.
func TestVerifySpansAgreement(t *testing.T) {
	variants := map[string]cluster.Config{}
	variants["base"] = failing()
	withTimeout := failing()
	withTimeout.Timeout = cluster.Seconds(120)
	variants["timeout"] = withTimeout
	corr := failing()
	corr.ProbCorrelated = 0.3
	corr.CorrelatedFactor = 100
	variants["correlated"] = corr

	for name, cfg := range variants {
		t.Run(name, func(t *testing.T) {
			opts := quickOpts()
			opts.VerifySpans = true
			res, err := Estimate(cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			sc := res.SpanCheck
			if sc == nil {
				t.Fatal("VerifySpans set but SpanCheck is nil")
			}
			if !sc.Within {
				t.Errorf("span accounting disagrees: max |Δ| = %g > tolerance %g (reward %v, span %v)",
					sc.MaxDelta, sc.Tolerance, sc.RewardMean, sc.SpanMean)
			}
			// The two derivations see the same trajectories, so they must
			// agree to round-off, far inside any statistical tolerance.
			if sc.MaxDelta > 1e-9 {
				t.Errorf("max delta %g exceeds round-off budget", sc.MaxDelta)
			}
		})
	}
}

// TestVerifySpansObservational: the estimate itself is bit-identical with
// and without span verification.
func TestVerifySpansObservational(t *testing.T) {
	cfg := failing()
	plain, err := Estimate(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.VerifySpans = true
	verified, err := Estimate(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.UsefulWorkFraction != verified.UsefulWorkFraction {
		t.Errorf("span verification changed the estimate: %+v vs %+v",
			plain.UsefulWorkFraction, verified.UsefulWorkFraction)
	}
}

// TestVerifySpansTelemetryAndJournal: phase budgets reach the registry and
// the journal carries the per-replication span fields plus the estimate's
// span_check verdict.
func TestVerifySpansTelemetryAndJournal(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	opts := quickOpts()
	opts.VerifySpans = true
	opts.Metrics = reg
	opts.Journal = obs.NewJournal(&buf)
	res, err := Estimate(failing(), opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	comp, ok := snap.Histograms["phase.hours.computation"]
	if !ok {
		t.Fatal("phase.hours.computation histogram missing")
	}
	if comp.Count != uint64(opts.Replications) {
		t.Errorf("computation budget observations = %d, want %d", comp.Count, opts.Replications)
	}
	if comp.Sum <= 0 || comp.Sum > float64(opts.Replications)*opts.Measure {
		t.Errorf("computation hours %v outside (0, total window]", comp.Sum)
	}
	if _, ok := snap.Counters["phase.spans"]; !ok {
		t.Error("phase.spans counter missing")
	}

	var sawSpanFields, sawSpanCheck bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad journal line: %v", err)
		}
		switch rec["kind"] {
		case "replication":
			if _, ok := rec["span_useful_fraction"]; ok {
				sawSpanFields = true
				if ph, ok := rec["phase_hours"].(map[string]any); !ok || len(ph) == 0 {
					t.Errorf("replication record lacks phase_hours: %v", rec["phase_hours"])
				}
			}
		case "estimate":
			sc, ok := rec["span_check"].(map[string]any)
			if !ok {
				t.Fatal("estimate record lacks span_check")
			}
			sawSpanCheck = true
			if within, _ := sc["within"].(bool); !within {
				t.Errorf("journal span_check not within tolerance: %v", sc)
			}
		}
	}
	if !sawSpanFields || !sawSpanCheck {
		t.Errorf("journal missing span fields (replication=%v, estimate=%v)", sawSpanFields, sawSpanCheck)
	}
	if res.SpanCheck == nil || !res.SpanCheck.Within {
		t.Errorf("result span check: %+v", res.SpanCheck)
	}
}
