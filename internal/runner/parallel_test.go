package runner

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cluster"
)

// TestEstimateWorkerInvariance is the contract of the parallel execution
// engine: for the same seed, Estimate must produce byte-identical Results
// for every worker count, because replication seeds are assigned before
// dispatch and results are reduced in replication order.
func TestEstimateWorkerInvariance(t *testing.T) {
	cfg := cluster.Default()
	base := quickOpts()
	base.Replications = 4

	seq := base
	seq.Workers = 1
	want, err := Estimate(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 4, runtime.NumCPU(), -1, 100} {
		o := base
		o.Workers = workers
		got, err := Estimate(cfg, o)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d result differs from sequential:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestCompareWorkerInvariance extends the same contract to the paired
// common-random-numbers estimator.
func TestCompareWorkerInvariance(t *testing.T) {
	a := cluster.Default()
	b := a
	b.MTTR *= 2
	base := quickOpts()

	seq := base
	seq.Workers = 1
	want, err := Compare(a, b, seq)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{4, runtime.NumCPU()} {
		o := base
		o.Workers = workers
		got, err := Compare(a, b, o)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d comparison differs from sequential", workers)
		}
	}
}

func TestEstimateProgress(t *testing.T) {
	var (
		mu    sync.Mutex
		last  Progress
		calls int
	)
	o := quickOpts()
	o.Workers = 2
	o.Progress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		last = p
	}
	if _, err := Estimate(cluster.Default(), o); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress hook never called")
	}
	if last.Done != o.Replications || last.Total != o.Replications {
		t.Fatalf("final progress %+v, want Done=Total=%d", last, o.Replications)
	}
	if last.Events == 0 {
		t.Fatal("no simulation events reported")
	}
	if last.Elapsed <= 0 {
		t.Fatalf("elapsed %v", last.Elapsed)
	}
}

func TestEstimateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := quickOpts()
	o.Workers = 2
	if _, err := EstimateContext(ctx, cluster.Default(), o); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
