package runner

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/phasetrace"
	"repro/internal/stats"
	"repro/internal/vr"
)

// Bucket layouts for the span-derived metrics: phase budgets span minutes
// to thousands of hours per window, loss impulses fractions of an hour to
// a few hundred.
var (
	phaseBuckets = obs.ExpBuckets(0.25, 2, 16)
	lossBuckets  = obs.ExpBuckets(0.01, 4, 10)
)

// Comparison is the outcome of a paired A/B estimate.
type Comparison struct {
	// A and B are the independent estimates of the two configurations.
	A, B Result
	// FractionDiff is the paired confidence interval of
	// (B − A) useful-work fraction. Pairing with common random numbers
	// cancels most sampling noise, so small design effects resolve with
	// far fewer replications than two independent estimates would need.
	FractionDiff stats.Interval
	// TotalDiff is the paired CI of (B − A) total useful work.
	TotalDiff stats.Interval
	// Sync is the common-random-numbers audit (Options.SyncReport only):
	// per-purpose draw alignment between the paired replications and the
	// residual output correlation the pairing achieved.
	Sync *vr.SyncReport
}

// Significant reports whether the fraction difference is statistically
// nonzero at the comparison's confidence level.
func (c Comparison) Significant() bool {
	return !c.FractionDiff.Contains(0)
}

// Compare estimates two configurations with common random numbers:
// replication r of A and replication r of B share the same seed, so the
// same failure times and quiesce samples drive both systems wherever their
// dynamics coincide. The returned intervals are paired-t CIs of the
// differences (B − A).
func Compare(a, b cluster.Config, opts Options) (Comparison, error) {
	return CompareContext(context.Background(), a, b, opts)
}

// CompareContext is Compare with cancellation. Each replication pair
// (A and B under the same seed) is one job on the worker pool; as with
// EstimateContext, seeds are assigned before dispatch and the reduction
// runs in replication order, so the comparison is bit-identical for every
// Workers value.
func CompareContext(ctx context.Context, a, b cluster.Config, opts Options) (Comparison, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return Comparison{}, err
	}
	if err := a.Validate(); err != nil {
		return Comparison{}, fmt.Errorf("runner: config A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return Comparison{}, fmt.Errorf("runner: config B: %w", err)
	}
	// A comparison is a two-cell plan sharing one root seed: cell A and
	// cell B draw identical seed streams, which is the common-random-numbers
	// pairing. Planning it through the block planner keeps the seed
	// derivation in one place.
	plan, err := blocks.Plan([]blocks.Cell{
		{Label: "A", Seed: opts.Seed, Replications: opts.Replications, Config: a},
		{Label: "B", Seed: opts.Seed, Replications: opts.Replications, Config: b},
	}, blocks.PlanOptions{
		Name:       "compare",
		Warmup:     opts.Warmup,
		Measure:    opts.Measure,
		Confidence: opts.Confidence,
		BlockSize:  opts.Replications,
	})
	if err != nil {
		return Comparison{}, fmt.Errorf("runner: %w", err)
	}
	seeds := plan.Blocks[0].Seeds // == Blocks[1].Seeds: same root seed
	type pair struct {
		a, b           model.Metrics
		drawsA, drawsB []uint64
	}
	var events atomic.Uint64
	// One cache per worker covers both configurations: a worker holds at
	// most one A instance and one B instance and recycles them pair after
	// pair.
	pairs, err := exec.MapLocal(ctx, pool(opts, &events), opts.Replications, newInstanceCache,
		func(_ context.Context, cache *instanceCache, r int) (pair, error) {
			oa, err := runOne(a, seeds[r], false, opts, cache)
			events.Add(oa.fired)
			if err != nil {
				return pair{}, err
			}
			ob, err := runOne(b, seeds[r], false, opts, cache)
			events.Add(ob.fired)
			if err != nil {
				return pair{}, err
			}
			return pair{oa.metrics, ob.metrics, oa.draws, ob.draws}, nil
		})
	if err != nil {
		return Comparison{}, err
	}
	var (
		comp              Comparison
		fracDiff, totDiff stats.Accumulator
		fracA, totA       stats.Accumulator
		fracB, totB       stats.Accumulator
	)
	for _, p := range pairs {
		comp.A.PerReplication = append(comp.A.PerReplication, p.a)
		comp.B.PerReplication = append(comp.B.PerReplication, p.b)
		fracA.Add(p.a.UsefulWorkFraction)
		fracB.Add(p.b.UsefulWorkFraction)
		totA.Add(p.a.TotalUsefulWork)
		totB.Add(p.b.TotalUsefulWork)
		fracDiff.Add(p.b.UsefulWorkFraction - p.a.UsefulWorkFraction)
		totDiff.Add(p.b.TotalUsefulWork - p.a.TotalUsefulWork)
	}
	comp.A.UsefulWorkFraction = fracA.CI(opts.Confidence)
	comp.A.TotalUsefulWork = totA.CI(opts.Confidence)
	comp.B.UsefulWorkFraction = fracB.CI(opts.Confidence)
	comp.B.TotalUsefulWork = totB.CI(opts.Confidence)
	comp.FractionDiff = fracDiff.CI(opts.Confidence)
	comp.TotalDiff = totDiff.CI(opts.Confidence)
	if opts.SyncReport {
		drawsA := make([][]uint64, len(pairs))
		drawsB := make([][]uint64, len(pairs))
		outA := make([]float64, len(pairs))
		outB := make([]float64, len(pairs))
		for r, p := range pairs {
			drawsA[r], drawsB[r] = p.drawsA, p.drawsB
			outA[r] = p.a.UsefulWorkFraction
			outB[r] = p.b.UsefulWorkFraction
		}
		rep := vr.BuildSyncReport(model.PurposeNames(), drawsA, drawsB, outA, outB)
		comp.Sync = &rep
	}
	return comp, nil
}

// repOut is everything one trajectory hands back to the reducer: the
// paper's metrics, the event count, the trajectory's wall time, and — when
// a journal is attached — the deterministic simulator-telemetry snapshot
// destined for its "replication" record.
type repOut struct {
	metrics model.Metrics
	fired   uint64
	wall    time.Duration
	sim     map[string]any

	// Span-derived accounting (Options.VerifySpans only): the useful-work
	// fraction re-derived from phase spans, the windowed per-phase budget
	// with rework split out, and the rollback count inside the window.
	spanFrac  float64
	phase     phasetrace.Budget
	rollbacks int

	// draws holds the per-purpose variate counts of the trajectory
	// (Options.SyncReport only) — the raw material of the CRN audit.
	draws []uint64
}

// runOne simulates one trajectory on an instance from the worker's cache
// (built on first use, recycled after). When telemetry is requested it
// attaches a fresh obs.Shard to the instance (one shard per replication,
// owned by whichever pool worker runs it), flushes the engine counters at
// the end, snapshots the shard for the journal and merges it into the
// registry. Journal-only runs (Journal set, Metrics nil) instrument into a
// throwaway registry so the snapshot exists without polluting anyone's
// metrics.
//
// Cache telemetry (instance builds/recycles, event-pool hits/misses) goes
// to the registry only, never into the shard: the shard snapshot lands in
// the journal, whose bytes are pinned identical across worker counts, and
// whether an instance was fresh or recycled depends on how many workers
// split the replications.
func runOne(cfg cluster.Config, seed uint64, reflected bool, opts Options, cache *instanceCache) (repOut, error) {
	start := time.Now()
	// Per-purpose sub-streams are on for the CRN audit and for antithetic
	// pairs (both legs): with one interleaved stream the legs desynchronize
	// at the first divergence and reflection stops pairing matching draws;
	// purpose-split streams keep the k-th failure draw of the reflected leg
	// the exact mirror of the plain leg's k-th, which is what makes the
	// antithetic correlation strong.
	crn := opts.SyncReport || opts.VarianceReduction == vr.ModeAntithetic
	in, recycled, err := cache.instance(cfg, seed, reflected, crn)
	if err != nil {
		return repOut{}, err
	}
	var sh *obs.Shard
	if opts.Metrics != nil || opts.Journal != nil || opts.forceSim {
		reg := opts.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		sh = reg.NewShard()
		in.Instrument(sh)
	}
	var rec *phasetrace.Recorder
	if opts.VerifySpans {
		rec = in.AttachPhases()
	}
	m, err := in.RunSteadyState(opts.Warmup, opts.Measure)
	out := repOut{metrics: m, fired: in.Fired(), wall: time.Since(start)}
	if opts.SyncReport {
		out.draws = in.DrawCounts()
	}
	if rec != nil {
		t0, t1 := opts.Warmup, opts.Warmup+opts.Measure
		tl := rec.Finish(in.Now()).SplitRework()
		out.spanFrac = tl.UsefulFraction(t0, t1)
		out.phase = tl.BudgetBetween(t0, t1)
		for _, l := range tl.Losses {
			if l.Time > t0 && l.Time <= t1 {
				out.rollbacks++
				if sh != nil {
					sh.Histogram("phase.loss_hours", lossBuckets).Observe(l.Amount)
				}
			}
		}
		if sh != nil {
			for _, p := range phasetrace.Phases() {
				sh.Histogram("phase.hours."+p.String(), phaseBuckets).Observe(out.phase[p])
			}
			sh.Counter("phase.rollbacks").Add(uint64(out.rollbacks))
			sh.Counter("phase.spans").Add(uint64(len(tl.Spans)))
		}
	}
	if sh != nil {
		in.FlushEngineStats()
		if opts.Journal != nil || opts.forceSim {
			out.sim = sh.Snapshot()
		}
		sh.Merge()
	}
	if reg := opts.Metrics; reg != nil {
		reg.Counter("runner.replications").Inc()
		reg.Counter("runner.events").Add(out.fired)
		reg.Timer("runner.replication_wall_s").Observe(out.wall)
		if recycled {
			reg.Counter("runner.instance_recycles").Inc()
		} else {
			reg.Counter("runner.instance_builds").Inc()
		}
		hits, misses, size := in.PoolStats()
		reg.Counter("des.pool_hits").Add(hits)
		reg.Counter("des.pool_misses").Add(misses)
		reg.Gauge("des.pool_size").Set(int64(size))
	}
	return out, err
}
