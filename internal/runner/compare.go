package runner

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Comparison is the outcome of a paired A/B estimate.
type Comparison struct {
	// A and B are the independent estimates of the two configurations.
	A, B Result
	// FractionDiff is the paired confidence interval of
	// (B − A) useful-work fraction. Pairing with common random numbers
	// cancels most sampling noise, so small design effects resolve with
	// far fewer replications than two independent estimates would need.
	FractionDiff stats.Interval
	// TotalDiff is the paired CI of (B − A) total useful work.
	TotalDiff stats.Interval
}

// Significant reports whether the fraction difference is statistically
// nonzero at the comparison's confidence level.
func (c Comparison) Significant() bool {
	return !c.FractionDiff.Contains(0)
}

// Compare estimates two configurations with common random numbers:
// replication r of A and replication r of B share the same seed, so the
// same failure times and quiesce samples drive both systems wherever their
// dynamics coincide. The returned intervals are paired-t CIs of the
// differences (B − A).
func Compare(a, b cluster.Config, opts Options) (Comparison, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return Comparison{}, err
	}
	if err := a.Validate(); err != nil {
		return Comparison{}, fmt.Errorf("runner: config A: %w", err)
	}
	if err := b.Validate(); err != nil {
		return Comparison{}, fmt.Errorf("runner: config B: %w", err)
	}
	root := rng.New(opts.Seed)
	var (
		comp              Comparison
		fracDiff, totDiff stats.Accumulator
		fracA, totA       stats.Accumulator
		fracB, totB       stats.Accumulator
	)
	for r := 0; r < opts.Replications; r++ {
		seed := root.Uint64()
		ma, err := runOne(a, seed, opts)
		if err != nil {
			return Comparison{}, err
		}
		mb, err := runOne(b, seed, opts)
		if err != nil {
			return Comparison{}, err
		}
		comp.A.PerReplication = append(comp.A.PerReplication, ma)
		comp.B.PerReplication = append(comp.B.PerReplication, mb)
		fracA.Add(ma.UsefulWorkFraction)
		fracB.Add(mb.UsefulWorkFraction)
		totA.Add(ma.TotalUsefulWork)
		totB.Add(mb.TotalUsefulWork)
		fracDiff.Add(mb.UsefulWorkFraction - ma.UsefulWorkFraction)
		totDiff.Add(mb.TotalUsefulWork - ma.TotalUsefulWork)
	}
	comp.A.UsefulWorkFraction = fracA.CI(opts.Confidence)
	comp.A.TotalUsefulWork = totA.CI(opts.Confidence)
	comp.B.UsefulWorkFraction = fracB.CI(opts.Confidence)
	comp.B.TotalUsefulWork = totB.CI(opts.Confidence)
	comp.FractionDiff = fracDiff.CI(opts.Confidence)
	comp.TotalDiff = totDiff.CI(opts.Confidence)
	return comp, nil
}

// runOne simulates one trajectory.
func runOne(cfg cluster.Config, seed uint64, opts Options) (model.Metrics, error) {
	in, err := model.New(cfg, seed)
	if err != nil {
		return model.Metrics{}, err
	}
	return in.RunSteadyState(opts.Warmup, opts.Measure)
}
