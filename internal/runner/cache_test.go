package runner

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestEstimateRecyclesInstances pins that the per-worker instance cache is
// actually in the estimate path: a sequential 4-replication run builds one
// instance, recycles it three times, and serves the recycled replications
// from the engine's event pool. (That recycling cannot change results is
// covered by the worker-invariance tests and the model's
// TestRecycleMatchesFreshBuild.)
func TestEstimateRecyclesInstances(t *testing.T) {
	reg := obs.NewRegistry()
	opts := quickOpts()
	opts.Replications = 4
	opts.Workers = 1
	opts.Metrics = reg
	if _, err := Estimate(cluster.Default(), opts); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if b := snap.Counters["runner.instance_builds"]; b != 1 {
		t.Errorf("built %d instances for a sequential run, want 1", b)
	}
	if r := snap.Counters["runner.instance_recycles"]; r != 3 {
		t.Errorf("recycled %d times, want 3", r)
	}
	hits, misses := snap.Counters["des.pool_hits"], snap.Counters["des.pool_misses"]
	if hits == 0 {
		t.Error("event pool never hit across recycled replications")
	}
	// Pool telemetry is flushed per replication; the three recycled
	// trajectories replay entirely from the pool, so misses (all from the
	// first build) must be a small fraction of total scheduling.
	if misses >= hits {
		t.Errorf("pool misses %d not dominated by hits %d", misses, hits)
	}
	if g, ok := snap.Gauges["des.pool_size"]; !ok || g <= 0 {
		t.Errorf("des.pool_size gauge missing or zero: %d (present=%v)", g, ok)
	}
}

// TestCompareSharesCacheAcrossConfigs pins that a paired comparison builds
// each of the two configurations exactly once per worker.
func TestCompareSharesCacheAcrossConfigs(t *testing.T) {
	a := cluster.Default()
	b := a
	b.MTTR *= 2
	reg := obs.NewRegistry()
	opts := quickOpts()
	opts.Replications = 3
	opts.Workers = 1
	opts.Metrics = reg
	if _, err := Compare(a, b, opts); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if builds := snap.Counters["runner.instance_builds"]; builds != 2 {
		t.Errorf("built %d instances for two configs on one worker, want 2", builds)
	}
	if r := snap.Counters["runner.instance_recycles"]; r != 4 {
		t.Errorf("recycled %d times, want 4 (2 configs × 2 later replications)", r)
	}
}
