// Package runner estimates steady-state measures of the checkpointing
// model by independent replications: each replication simulates a transient
// warmup (discarded, the paper uses 1000 h) plus a measurement window, and
// the replication means feed Student-t confidence intervals at the paper's
// 95 % level.
package runner

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Options controls the estimation procedure.
type Options struct {
	// Replications is the number of independent trajectories (≥ 2 for a
	// confidence interval). Default 5.
	Replications int
	// Warmup is the discarded transient, in hours. Default 1000 (paper).
	Warmup float64
	// Measure is the measurement window per replication, in hours.
	// Default 4000.
	Measure float64
	// Confidence is the CI level. Default 0.95 (paper).
	Confidence float64
	// Seed is the root seed; replication r uses an independent sub-stream
	// derived from it. Default 1.
	Seed uint64
	// Workers bounds how many replications simulate concurrently on the
	// internal/exec pool. 0 (the zero-value default) and 1 run
	// sequentially — the historic behavior — and a negative value means
	// one worker per CPU. The estimate is bit-identical for every value:
	// replication seeds are drawn from the root stream before dispatch
	// and results are reduced in replication order.
	Workers int
	// Progress, when non-nil, receives a snapshot after every
	// replication state change. Calls are serialized by the pool; the
	// callback must be fast.
	Progress func(Progress)
}

// Progress is a snapshot of an in-flight estimation.
type Progress struct {
	// Done and Total count finished and scheduled replications (for
	// Compare, replication pairs).
	Done, Total int
	// Events is the cumulative number of simulation events fired across
	// the completed replications.
	Events uint64
	// Elapsed is the wall time since the estimation started.
	Elapsed time.Duration
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Replications == 0 {
		o.Replications = 5
	}
	if o.Warmup == 0 {
		o.Warmup = 1000
	}
	if o.Measure == 0 {
		o.Measure = 4000
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Validate reports option problems (after defaulting).
func (o Options) Validate() error {
	if o.Replications < 1 {
		return fmt.Errorf("runner: Replications %d < 1", o.Replications)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("runner: negative Warmup %v", o.Warmup)
	}
	if o.Measure <= 0 {
		return fmt.Errorf("runner: Measure %v must be positive", o.Measure)
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return fmt.Errorf("runner: Confidence %v outside (0,1)", o.Confidence)
	}
	return nil
}

// Result aggregates the replications of one configuration.
type Result struct {
	// UsefulWorkFraction is the replication-mean fraction with its CI.
	UsefulWorkFraction stats.Interval
	// TotalUsefulWork is the replication-mean total useful work with CI.
	TotalUsefulWork stats.Interval
	// PerReplication holds the raw metrics of each trajectory.
	PerReplication []model.Metrics
}

// Estimate runs the model for cfg under the given options.
func Estimate(cfg cluster.Config, opts Options) (Result, error) {
	return EstimateContext(context.Background(), cfg, opts)
}

// EstimateContext is Estimate with cancellation: when ctx is cancelled no
// further replications start and the context error is returned.
func EstimateContext(ctx context.Context, cfg cluster.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("runner: %w", err)
	}
	// Seeds are drawn from the root stream in replication order before any
	// replication is dispatched, so the assignment seed↔replication is a
	// pure function of opts.Seed — the core of the worker-count
	// determinism guarantee.
	seeds := replicationSeeds(opts.Seed, opts.Replications)
	var events atomic.Uint64
	metrics, err := exec.Map(ctx, pool(opts, &events), opts.Replications,
		func(_ context.Context, r int) (model.Metrics, error) {
			m, fired, err := runOne(cfg, seeds[r], opts)
			events.Add(fired)
			return m, err
		})
	if err != nil {
		return Result{}, err
	}
	return reduce(metrics, opts), nil
}

// replicationSeeds derives one independent sub-stream seed per replication
// from the root seed.
func replicationSeeds(seed uint64, n int) []uint64 {
	root := rng.New(seed)
	seeds := make([]uint64, n)
	for r := range seeds {
		seeds[r] = root.Uint64()
	}
	return seeds
}

// pool builds the exec pool for opts, bridging pool snapshots to the
// caller's Progress hook with the events counter mixed in.
func pool(opts Options, events *atomic.Uint64) exec.Pool {
	p := exec.Pool{Workers: exec.WorkerCount(opts.Workers)}
	if opts.Progress != nil {
		hook := opts.Progress
		p.OnProgress = func(ep exec.Progress) {
			hook(Progress{Done: ep.Done, Total: ep.Total, Events: events.Load(), Elapsed: ep.Elapsed})
		}
	}
	return p
}

// reduce folds per-replication metrics into the estimate, strictly in
// replication order so floating-point accumulation is scheduling-independent.
func reduce(metrics []model.Metrics, opts Options) Result {
	var frac, total stats.Accumulator
	for _, m := range metrics {
		frac.Add(m.UsefulWorkFraction)
		total.Add(m.TotalUsefulWork)
	}
	return Result{
		UsefulWorkFraction: frac.CI(opts.Confidence),
		TotalUsefulWork:    total.CI(opts.Confidence),
		PerReplication:     metrics,
	}
}
