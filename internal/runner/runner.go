// Package runner estimates steady-state measures of the checkpointing
// model by independent replications: each replication simulates a transient
// warmup (discarded, the paper uses 1000 h) plus a measurement window, and
// the replication means feed Student-t confidence intervals at the paper's
// 95 % level.
package runner

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/phasetrace"
	"repro/internal/provenance"
	"repro/internal/stats"
	"repro/internal/vr"
)

// Options controls the estimation procedure.
type Options struct {
	// Replications is the number of independent trajectories (≥ 2 for a
	// confidence interval). Default 5.
	Replications int
	// Warmup is the discarded transient, in hours. Default 1000 (paper).
	Warmup float64
	// Measure is the measurement window per replication, in hours.
	// Default 4000.
	Measure float64
	// Confidence is the CI level. Default 0.95 (paper).
	Confidence float64
	// Seed is the root seed; replication r uses an independent sub-stream
	// derived from it. Default 1.
	Seed uint64
	// Workers bounds how many replications simulate concurrently on the
	// internal/exec pool. 0 (the zero-value default) and 1 run
	// sequentially — the historic behavior — and a negative value means
	// one worker per CPU. The estimate is bit-identical for every value:
	// replication seeds are drawn from the root stream before dispatch
	// and results are reduced in replication order.
	Workers int
	// Progress, when non-nil, receives a snapshot after every
	// replication state change. Calls are serialized by the pool; the
	// callback must be fast.
	Progress func(Progress)
	// Metrics, when non-nil, receives live telemetry: the exec pool's job
	// counters, per-replication runner.* metrics, and the simulator's
	// san.*/des.* counters and histograms (recorded through per-worker
	// shards, merged once per replication, so the hot loop stays
	// contention-free). The registry may be shared across estimates and
	// watched live by an obs.DebugServer.
	Metrics *obs.Registry
	// Journal, when non-nil, receives one structured "replication" record
	// per trajectory plus a closing "estimate" record. Records are written
	// after all replications complete, in replication order, so the
	// journal content is byte-identical for every Workers value apart from
	// the fields named in obs.TimestampFields.
	Journal *obs.Journal
	// Label, when non-empty, tags every journal record of this estimate —
	// sweeps and experiment grids use it to identify the cell.
	Label string
	// VarianceReduction selects the replication-scheduling scheme.
	// vr.ModeAntithetic runs replications as (plain, reflected) pairs
	// sharing a seed: pair k occupies replications 2k (plain leg) and 2k+1
	// (reflected leg, every uniform draw mirrored u → 1−u), and the
	// estimate is formed over the pair means, whose variance the negative
	// leg correlation shrinks. An odd Replications count is rounded up to
	// complete the last pair. The measured efficiency is reported in
	// Result.VR and the journal's estimate record; plain mode (the zero
	// value) is bit-identical to pre-VR behavior.
	VarianceReduction vr.Mode
	// SyncReport makes Compare route every stochastic purpose through its
	// own labelled CRN sub-stream and audit the synchronization: per-purpose
	// draw counts per replication, the fraction of pairs that stayed on
	// literally common variates, and the output correlation achieved
	// (Comparison.Sync). The purpose routing changes trajectories relative
	// to a plain Compare — it is the hardened-CRN mode, not an observer.
	SyncReport bool
	// VerifySpans attaches a phase-span recorder (internal/phasetrace) to
	// every replication and cross-checks the span-derived useful-work
	// fraction against the reward-based estimate — two independent
	// derivations from the same trajectory. The outcome is published as
	// Result.SpanCheck, per-phase time budgets flow into Metrics
	// (phase.hours.*) and the journal, and recording is purely
	// observational: the trajectory is bit-identical with or without it.
	VerifySpans bool
	// Provenance, when non-nil, is written as a leading "provenance"
	// record before any replication record, answering "which binary and
	// config produced this journal?" months later. It is deliberately NOT
	// part of the block-sweep journal contract: block and sweep journals
	// must stay byte-identical across commits (the crash-resume identity
	// tests compare them), so provenance there lives in the run manifest
	// and heartbeats instead. Single-estimate CLIs (ccsim) set it.
	Provenance *provenance.Stamp
	// forceSim makes every replication snapshot its simulator telemetry
	// even without a Journal. BlockRunner sets it: block workers carry no
	// journal of their own but must hand back records carrying the same
	// "sim" field a monolithic journaling run would write.
	forceSim bool
}

// Progress is a snapshot of an in-flight estimation.
type Progress struct {
	// Done and Total count finished and scheduled replications (for
	// Compare, replication pairs).
	Done, Total int
	// Events is the cumulative number of simulation events fired across
	// the completed replications.
	Events uint64
	// Elapsed is the wall time since the estimation started.
	Elapsed time.Duration
	// Final marks the last snapshot of the estimation, delivered exactly
	// once whether the run finished or ended early (see exec.Progress).
	Final bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Replications == 0 {
		o.Replications = 5
	}
	if o.Warmup == 0 {
		o.Warmup = 1000
	}
	if o.Measure == 0 {
		o.Measure = 4000
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.VarianceReduction == vr.ModeAntithetic && o.Replications%2 == 1 {
		o.Replications++ // complete the last (plain, reflected) pair
	}
	return o
}

// vrString maps the option mode onto the manifest spelling (blocks.VRNone
// is the empty string so plain manifests keep their pre-VR hashes).
func vrString(m vr.Mode) string {
	if m == vr.ModeAntithetic {
		return blocks.VRAntithetic
	}
	return blocks.VRNone
}

// Validate reports option problems (after defaulting).
func (o Options) Validate() error {
	if o.Replications < 1 {
		return fmt.Errorf("runner: Replications %d < 1", o.Replications)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("runner: negative Warmup %v", o.Warmup)
	}
	if o.Measure <= 0 {
		return fmt.Errorf("runner: Measure %v must be positive", o.Measure)
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return fmt.Errorf("runner: Confidence %v outside (0,1)", o.Confidence)
	}
	return nil
}

// Result aggregates the replications of one configuration.
type Result struct {
	// UsefulWorkFraction is the replication-mean fraction with its CI.
	UsefulWorkFraction stats.Interval
	// TotalUsefulWork is the replication-mean total useful work with CI.
	TotalUsefulWork stats.Interval
	// PerReplication holds the raw metrics of each trajectory.
	PerReplication []model.Metrics
	// SpanCheck reports the span-vs-reward cross-check; nil unless
	// Options.VerifySpans was set.
	SpanCheck *SpanCheck
	// VR reports the measured antithetic efficiency; nil unless
	// Options.VarianceReduction was vr.ModeAntithetic.
	VR *vr.Report
}

// SpanCheck is the outcome of the phase-accounting self-verification: the
// reward-based and span-derived useful-work estimates of the same
// trajectories, and whether their worst per-replication disagreement stays
// within tolerance.
type SpanCheck struct {
	// RewardMean and SpanMean are the replication means of the two
	// derivations (they use identical trajectories, so the difference is
	// pure accounting error, not sampling noise).
	RewardMean float64
	SpanMean   float64
	// MaxDelta is the largest per-replication |span − reward|.
	MaxDelta float64
	// Tolerance is the acceptance threshold: the reward estimate's CI
	// half-width (the issue's yardstick), floored at 1e-9 so a zero-width
	// interval still admits float round-off.
	Tolerance float64
	// Within reports MaxDelta ≤ Tolerance.
	Within bool
}

// spanCheck folds the per-replication comparisons into a SpanCheck.
func spanCheck(outs []repOut, res Result) *SpanCheck {
	sc := &SpanCheck{RewardMean: res.UsefulWorkFraction.Mean}
	for _, o := range outs {
		sc.SpanMean += o.spanFrac
		if d := math.Abs(o.spanFrac - o.metrics.UsefulWorkFraction); d > sc.MaxDelta {
			sc.MaxDelta = d
		}
	}
	if len(outs) > 0 {
		sc.SpanMean /= float64(len(outs))
	}
	sc.Tolerance = res.UsefulWorkFraction.HalfWide
	if math.IsNaN(sc.Tolerance) || math.IsInf(sc.Tolerance, 0) || sc.Tolerance < 1e-9 {
		sc.Tolerance = 1e-9
	}
	sc.Within = sc.MaxDelta <= sc.Tolerance
	return sc
}

// Estimate runs the model for cfg under the given options.
func Estimate(cfg cluster.Config, opts Options) (Result, error) {
	return EstimateContext(context.Background(), cfg, opts)
}

// EstimateContext is Estimate with cancellation: when ctx is cancelled no
// further replications start and the context error is returned.
func EstimateContext(ctx context.Context, cfg cluster.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("runner: %w", err)
	}
	// A single estimate is the degenerate sweep: one cell, planned through
	// the same block planner the distributed engine uses, then "claimed"
	// whole and reduced in this process. Every replication's seed is
	// therefore fixed by the plan before any replication is dispatched —
	// a pure function of opts.Seed — which is the core of both the
	// worker-count and the process-count determinism guarantees.
	plan, err := blocks.Plan([]blocks.Cell{{
		Label:        opts.Label,
		Seed:         opts.Seed,
		Replications: opts.Replications,
		Config:       cfg,
	}}, blocks.PlanOptions{
		Name:       "estimate",
		Warmup:     opts.Warmup,
		Measure:    opts.Measure,
		Confidence: opts.Confidence,
		BlockSize:  opts.Replications,
		VR:         vrString(opts.VarianceReduction),
	})
	if err != nil {
		return Result{}, fmt.Errorf("runner: %w", err)
	}
	seeds := plan.Blocks[0].Seeds
	antithetic := opts.VarianceReduction == vr.ModeAntithetic
	start := time.Now()
	var events atomic.Uint64
	// Each worker carries one instance cache: the model is built on the
	// worker's first replication and recycled for the rest (zero-allocation
	// hot loop; see internal/runner/cache.go for why this cannot affect
	// results).
	outs, err := exec.MapLocal(ctx, pool(opts, &events), opts.Replications, newInstanceCache,
		func(_ context.Context, cache *instanceCache, r int) (repOut, error) {
			// Under antithetic VR the plan duplicated each seed across a
			// (plain, reflected) pair; the leg is the replication parity,
			// fixed — like the seed — before dispatch, so leg assignment is
			// invisible to worker scheduling.
			o, err := runOne(cfg, seeds[r], antithetic && r%2 == 1, opts, cache)
			events.Add(o.fired)
			return o, err
		})
	if err != nil {
		return Result{}, err
	}
	metrics := make([]model.Metrics, len(outs))
	for i, o := range outs {
		metrics[i] = o.metrics
	}
	res := reduce(metrics, opts)
	if opts.VerifySpans {
		res.SpanCheck = spanCheck(outs, res)
	}
	recordEstimate(opts, outs, res, time.Since(start))
	if opts.Journal != nil {
		if err := writeJournal(opts, seeds, outs, res); err != nil {
			return Result{}, fmt.Errorf("runner: journal: %w", err)
		}
	}
	return res, nil
}

// recordEstimate publishes estimate-level telemetry.
func recordEstimate(opts Options, outs []repOut, res Result, elapsed time.Duration) {
	reg := opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("runner.estimates").Inc()
	var events uint64
	for _, o := range outs {
		events += o.fired
	}
	if s := elapsed.Seconds(); s > 0 {
		reg.FloatGauge("runner.events_per_sec").Set(float64(events) / s)
	}
	// With a single replication the half-width is undefined (Inf); the
	// gauge carries only finite values so snapshots stay marshalable.
	if hw := res.UsefulWorkFraction.HalfWide; !math.IsInf(hw, 0) && !math.IsNaN(hw) {
		reg.FloatGauge("runner.ci_half_width").Set(hw)
	}
	// GC pressure of the estimate just completed — with the pooled engine
	// and recycled instances the heap numbers stay flat across estimates.
	obs.RecordMemStats(reg)
}

// repFields builds one trajectory's "replication" record fields — shared
// verbatim between the monolithic journal writer below and BlockRunner, so
// a block journal's records and a monolithic journal's records are the
// same bytes. Everything except ci_half_width, which depends on the
// replications before this one and is appended by whoever knows the prefix
// (writeJournal here, the block writer block-locally, the reducer
// cell-globally).
func repFields(rep int, seed uint64, o repOut, opts Options) map[string]any {
	fields := map[string]any{
		"rep":             rep,
		"seed":            seed,
		"events":          o.fired,
		"useful_fraction": o.metrics.UsefulWorkFraction,
		"total_useful":    o.metrics.TotalUsefulWork,
		"counters":        o.metrics.Counters,
		"wall_ms":         float64(o.wall) / float64(time.Millisecond),
	}
	if o.sim != nil {
		fields["sim"] = o.sim
	}
	if opts.VarianceReduction == vr.ModeAntithetic {
		// The leg is the replication parity (pairs are aligned to even
		// global indices by the planner) — journaled so a reader can split
		// plain from reflected legs without re-deriving the pairing.
		fields["vr_leg"] = rep % 2
	}
	if opts.VerifySpans {
		fields["span_useful_fraction"] = o.spanFrac
		fields["span_delta"] = o.spanFrac - o.metrics.UsefulWorkFraction
		fields["rollbacks"] = o.rollbacks
		fields["phase_hours"] = phaseHours(o.phase)
	}
	if opts.Label != "" {
		fields["label"] = opts.Label
	}
	return fields
}

// writeJournal emits one "replication" record per trajectory plus the
// closing "estimate" record, strictly in replication order. Every field is
// a pure function of (cfg, opts, seeds) except wall_ms and the timestamp,
// which is what makes journals comparable across worker counts — and,
// through blocks.EstimateFields, across process counts.
func writeJournal(opts Options, seeds []uint64, outs []repOut, res Result) error {
	j := opts.Journal
	if opts.Provenance != nil {
		if err := j.Record("provenance", opts.Provenance.Fields()); err != nil {
			return err
		}
	}
	w := blocks.NewWidthTracker(opts.Confidence, vrString(opts.VarianceReduction))
	var events uint64
	for r, o := range outs {
		events += o.fired
		fields := repFields(r, seeds[r], o, opts)
		// The prefix CI half-width after this replication — the raw
		// convergence trajectory, one point per record (paired prefix under
		// antithetic VR, via the same tracker the block writers use).
		fields["ci_half_width"] = w.Add(o.metrics.UsefulWorkFraction)
		if err := j.Record("replication", fields); err != nil {
			return err
		}
	}
	fracs := make([]float64, len(outs))
	totals := make([]float64, len(outs))
	for i, o := range outs {
		fracs[i] = o.metrics.UsefulWorkFraction
		totals[i] = o.metrics.TotalUsefulWork
	}
	fields := blocks.EstimateFields(opts.Confidence, [][]float64{fracs}, totals, events, opts.Label,
		vrString(opts.VarianceReduction))
	if sc := res.SpanCheck; sc != nil {
		fields["span_check"] = map[string]any{
			"reward_mean": sc.RewardMean,
			"span_mean":   sc.SpanMean,
			"max_delta":   sc.MaxDelta,
			"tolerance":   sc.Tolerance,
			"within":      sc.Within,
		}
	}
	return j.Record("estimate", fields)
}

// phaseHours flattens a windowed budget for the journal, keeping only the
// phases that occurred so records stay compact.
func phaseHours(b phasetrace.Budget) map[string]float64 {
	out := make(map[string]float64)
	for _, p := range phasetrace.Phases() {
		if b[p] > 0 {
			out[p.String()] = b[p]
		}
	}
	return out
}

// pool builds the exec pool for opts, bridging pool snapshots to the
// caller's Progress hook with the events counter mixed in.
func pool(opts Options, events *atomic.Uint64) exec.Pool {
	p := exec.Pool{Workers: exec.WorkerCount(opts.Workers), Metrics: opts.Metrics}
	if opts.Progress != nil {
		hook := opts.Progress
		p.OnProgress = func(ep exec.Progress) {
			hook(Progress{Done: ep.Done, Total: ep.Total, Events: events.Load(), Elapsed: ep.Elapsed, Final: ep.Final})
		}
	}
	return p
}

// reduce folds per-replication metrics into the estimate, strictly in
// replication order so floating-point accumulation is scheduling-independent.
// Under antithetic VR consecutive replications form (plain, reflected)
// pairs and the intervals are formed over the pair means, with the measured
// variance-reduction factor reported alongside.
func reduce(metrics []model.Metrics, opts Options) Result {
	if opts.VarianceReduction == vr.ModeAntithetic {
		var frac, total stats.PairedAccumulator
		for i := 0; i+1 < len(metrics); i += 2 {
			frac.AddPair(metrics[i].UsefulWorkFraction, metrics[i+1].UsefulWorkFraction)
			total.AddPair(metrics[i].TotalUsefulWork, metrics[i+1].TotalUsefulWork)
		}
		return Result{
			UsefulWorkFraction: frac.CI(opts.Confidence),
			TotalUsefulWork:    total.CI(opts.Confidence),
			PerReplication:     metrics,
			VR: vr.NewReport(vr.ModeAntithetic, frac.Pairs(), frac.VarianceReductionFactor(),
				frac.LegCorrelation(), frac.PairVariance(), frac.LegVariance()),
		}
	}
	var frac, total stats.Accumulator
	for _, m := range metrics {
		frac.Add(m.UsefulWorkFraction)
		total.Add(m.TotalUsefulWork)
	}
	return Result{
		UsefulWorkFraction: frac.CI(opts.Confidence),
		TotalUsefulWork:    total.CI(opts.Confidence),
		PerReplication:     metrics,
	}
}
