// Package runner estimates steady-state measures of the checkpointing
// model by independent replications: each replication simulates a transient
// warmup (discarded, the paper uses 1000 h) plus a measurement window, and
// the replication means feed Student-t confidence intervals at the paper's
// 95 % level.
package runner

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Options controls the estimation procedure.
type Options struct {
	// Replications is the number of independent trajectories (≥ 2 for a
	// confidence interval). Default 5.
	Replications int
	// Warmup is the discarded transient, in hours. Default 1000 (paper).
	Warmup float64
	// Measure is the measurement window per replication, in hours.
	// Default 4000.
	Measure float64
	// Confidence is the CI level. Default 0.95 (paper).
	Confidence float64
	// Seed is the root seed; replication r uses an independent sub-stream
	// derived from it. Default 1.
	Seed uint64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Replications == 0 {
		o.Replications = 5
	}
	if o.Warmup == 0 {
		o.Warmup = 1000
	}
	if o.Measure == 0 {
		o.Measure = 4000
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Validate reports option problems (after defaulting).
func (o Options) Validate() error {
	if o.Replications < 1 {
		return fmt.Errorf("runner: Replications %d < 1", o.Replications)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("runner: negative Warmup %v", o.Warmup)
	}
	if o.Measure <= 0 {
		return fmt.Errorf("runner: Measure %v must be positive", o.Measure)
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return fmt.Errorf("runner: Confidence %v outside (0,1)", o.Confidence)
	}
	return nil
}

// Result aggregates the replications of one configuration.
type Result struct {
	// UsefulWorkFraction is the replication-mean fraction with its CI.
	UsefulWorkFraction stats.Interval
	// TotalUsefulWork is the replication-mean total useful work with CI.
	TotalUsefulWork stats.Interval
	// PerReplication holds the raw metrics of each trajectory.
	PerReplication []model.Metrics
}

// Estimate runs the model for cfg under the given options.
func Estimate(cfg cluster.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("runner: %w", err)
	}
	root := rng.New(opts.Seed)
	var frac, total stats.Accumulator
	res := Result{PerReplication: make([]model.Metrics, 0, opts.Replications)}
	for r := 0; r < opts.Replications; r++ {
		seed := root.Uint64()
		in, err := model.New(cfg, seed)
		if err != nil {
			return Result{}, err
		}
		m, err := in.RunSteadyState(opts.Warmup, opts.Measure)
		if err != nil {
			return Result{}, err
		}
		frac.Add(m.UsefulWorkFraction)
		total.Add(m.TotalUsefulWork)
		res.PerReplication = append(res.PerReplication, m)
	}
	res.UsefulWorkFraction = frac.CI(opts.Confidence)
	res.TotalUsefulWork = total.CI(opts.Confidence)
	return res, nil
}
