package runner

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func quickOpts() Options {
	return Options{Replications: 3, Warmup: 100, Measure: 800, Seed: 7}
}

func TestEstimateBasic(t *testing.T) {
	cfg := cluster.Default()
	res, err := Estimate(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerReplication) != 3 {
		t.Fatalf("replications = %d", len(res.PerReplication))
	}
	f := res.UsefulWorkFraction
	if f.Mean <= 0 || f.Mean >= 1 {
		t.Fatalf("fraction mean = %v", f.Mean)
	}
	if f.N != 3 || f.Level != 0.95 {
		t.Fatalf("CI metadata wrong: %+v", f)
	}
	want := f.Mean * float64(cfg.Processors)
	if math.Abs(res.TotalUsefulWork.Mean-want)/want > 1e-9 {
		t.Fatalf("total = %v, want fraction×procs = %v", res.TotalUsefulWork.Mean, want)
	}
}

func TestEstimateDeterministicInSeed(t *testing.T) {
	cfg := cluster.Default()
	a, err := Estimate(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.UsefulWorkFraction.Mean != b.UsefulWorkFraction.Mean {
		t.Fatal("same seed gave different estimates")
	}
	o := quickOpts()
	o.Seed = 8
	c, err := Estimate(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.UsefulWorkFraction.Mean == a.UsefulWorkFraction.Mean {
		t.Fatal("different seed gave identical estimate")
	}
}

func TestReplicationsDiffer(t *testing.T) {
	res, err := Estimate(cluster.Default(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	first := res.PerReplication[0].UsefulWorkFraction
	allSame := true
	for _, m := range res.PerReplication[1:] {
		if m.UsefulWorkFraction != first {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("replications produced identical trajectories")
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Replications != 5 || o.Warmup != 1000 || o.Measure != 4000 || o.Confidence != 0.95 || o.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestValidation(t *testing.T) {
	if err := (Options{Replications: -1, Measure: 1, Confidence: 0.9}).Validate(); err == nil {
		t.Error("negative replications accepted")
	}
	if err := (Options{Replications: 2, Warmup: -1, Measure: 1, Confidence: 0.9}).Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	if err := (Options{Replications: 2, Measure: -1, Confidence: 0.9}).Validate(); err == nil {
		t.Error("negative measure accepted")
	}
	if err := (Options{Replications: 2, Measure: 1, Confidence: 2}).Validate(); err == nil {
		t.Error("confidence 2 accepted")
	}
	bad := cluster.Default()
	bad.Processors = 0
	if _, err := Estimate(bad, quickOpts()); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCIShrinkage(t *testing.T) {
	// More replications should not widen the CI (statistically this holds
	// overwhelmingly; seeds are fixed so the test is deterministic).
	cfg := cluster.Default()
	small, err := Estimate(cfg, Options{Replications: 3, Warmup: 100, Measure: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(cfg, Options{Replications: 10, Warmup: 100, Measure: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if big.UsefulWorkFraction.HalfWide > small.UsefulWorkFraction.HalfWide*1.5 {
		t.Fatalf("CI widened with more replications: %v vs %v",
			big.UsefulWorkFraction.HalfWide, small.UsefulWorkFraction.HalfWide)
	}
}
