package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/provenance"
)

// journalLines decodes a JSONL buffer into one map per record, dropping
// the wall-clock fields named in obs.TimestampFields — the only fields the
// determinism contract excludes.
func journalLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("journal line %d not valid JSON: %v\n%s", len(out), err, sc.Text())
		}
		stripTimestamps(m)
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func stripTimestamps(m map[string]any) {
	for _, f := range obs.TimestampFields {
		delete(m, f)
	}
	for _, v := range m {
		if sub, ok := v.(map[string]any); ok {
			stripTimestamps(sub)
		}
	}
}

func runJournaled(t *testing.T, workers int) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	opts := quickOpts()
	opts.Workers = workers
	opts.Journal = obs.NewJournal(&buf)
	opts.Label = "invariance"
	if _, err := Estimate(cluster.Default(), opts); err != nil {
		t.Fatalf("Workers=%d: %v", workers, err)
	}
	if err := opts.Journal.Err(); err != nil {
		t.Fatalf("Workers=%d journal error: %v", workers, err)
	}
	return journalLines(t, &buf)
}

// TestJournalWorkerInvariance extends the determinism contract to the run
// journal: modulo the timestamp fields, records must be identical at every
// worker count, because they are written after the replication fan-out in
// replication order from values that are pure functions of the seed.
func TestJournalWorkerInvariance(t *testing.T) {
	want := runJournaled(t, 1)
	for _, workers := range []int{4, -1} {
		got := runJournaled(t, workers)
		if len(got) != len(want) {
			t.Fatalf("Workers=%d wrote %d records, sequential wrote %d", workers, len(got), len(want))
		}
		for i := range want {
			w, _ := json.Marshal(want[i])
			g, _ := json.Marshal(got[i])
			if !bytes.Equal(w, g) {
				t.Fatalf("Workers=%d record %d differs:\n got %s\nwant %s", workers, i, g, w)
			}
		}
	}
}

// TestJournalContent checks the record shapes: one "replication" record
// per trajectory carrying seed, events, metrics and the simulator-telemetry
// snapshot, then one "estimate" record with intervals and the convergence
// trajectory.
func TestJournalContent(t *testing.T) {
	recs := runJournaled(t, 1)
	n := quickOpts().Replications
	if len(recs) != n+1 {
		t.Fatalf("got %d records, want %d", len(recs), n+1)
	}
	for r := 0; r < n; r++ {
		rec := recs[r]
		if rec["kind"] != "replication" {
			t.Fatalf("record %d kind = %v", r, rec["kind"])
		}
		if rec["rep"] != float64(r) {
			t.Fatalf("record %d rep = %v", r, rec["rep"])
		}
		if rec["label"] != "invariance" {
			t.Fatalf("record %d label = %v", r, rec["label"])
		}
		if rec["events"].(float64) <= 0 {
			t.Fatalf("record %d events = %v", r, rec["events"])
		}
		sim, ok := rec["sim"].(map[string]any)
		if !ok {
			t.Fatalf("record %d has no sim snapshot: %v", r, rec)
		}
		if sim["san.timed_firings"].(float64) <= 0 {
			t.Fatalf("record %d sim snapshot empty: %v", r, sim)
		}
		if _, ok := rec["ci_half_width"]; !ok {
			t.Fatalf("record %d missing ci_half_width", r)
		}
	}
	est := recs[n]
	if est["kind"] != "estimate" {
		t.Fatalf("last record kind = %v", est["kind"])
	}
	if est["replications"] != float64(n) {
		t.Fatalf("estimate replications = %v", est["replications"])
	}
	iv, ok := est["useful_fraction"].(map[string]any)
	if !ok || iv["mean"] == nil || iv["half_width"] == nil {
		t.Fatalf("estimate interval malformed: %v", est["useful_fraction"])
	}
	conv, ok := est["convergence"].([]any)
	if !ok || len(conv) != n-1 {
		t.Fatalf("convergence trajectory = %v, want %d entries", est["convergence"], n-1)
	}
}

// TestJournalProvenanceRecord: when a stamp is attached it leads the
// journal, before any replication record, with its fields flattened; when
// absent (the default, and the block-sweep contract) no such record exists.
func TestJournalProvenanceRecord(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts()
	opts.Journal = obs.NewJournal(&buf)
	stamp := provenance.Collect().WithConfig("sha256:deadbeef")
	opts.Provenance = &stamp
	if _, err := Estimate(cluster.Default(), opts); err != nil {
		t.Fatal(err)
	}
	recs := journalLines(t, &buf)
	if len(recs) != opts.Replications+2 {
		t.Fatalf("got %d records, want %d", len(recs), opts.Replications+2)
	}
	lead := recs[0]
	if lead["kind"] != "provenance" {
		t.Fatalf("leading record kind = %v", lead["kind"])
	}
	if lead["config_hash"] != "sha256:deadbeef" {
		t.Fatalf("provenance config_hash = %v", lead["config_hash"])
	}
	if lead["go_version"] == "" || lead["go_version"] == nil {
		t.Fatalf("provenance record incomplete: %v", lead)
	}
	if recs[1]["kind"] != "replication" {
		t.Fatalf("second record kind = %v", recs[1]["kind"])
	}
	// Default journals (runJournaled) carry no provenance record — pinned
	// by TestJournalContent's exact record count above.
}

// TestEstimateMetricsRegistry checks that an attached registry accumulates
// runner, pool and simulator telemetry consistently.
func TestEstimateMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	opts := quickOpts()
	opts.Workers = 2
	opts.Metrics = reg
	res, err := Estimate(cluster.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(opts.Replications)
	if got := reg.Counter("runner.replications").Value(); got != n {
		t.Fatalf("runner.replications = %d, want %d", got, n)
	}
	if got := reg.Counter("exec.jobs_done").Value(); got != n {
		t.Fatalf("exec.jobs_done = %d, want %d", got, n)
	}
	if got := reg.Counter("runner.estimates").Value(); got != 1 {
		t.Fatalf("runner.estimates = %d, want 1", got)
	}
	if len(res.PerReplication) != opts.Replications {
		t.Fatalf("replications = %d", len(res.PerReplication))
	}
	fired := reg.Counter("runner.events").Value()
	if fired == 0 {
		t.Fatal("runner.events = 0")
	}
	if got := reg.Counter("des.events_fired").Value(); got != fired {
		t.Fatalf("des.events_fired = %d, want %d (runner.events)", got, fired)
	}
	if reg.Counter("san.settles").Value() == 0 {
		t.Fatal("san.settles = 0; simulator telemetry not merged")
	}
	if hw := reg.FloatGauge("runner.ci_half_width").Value(); hw <= 0 {
		t.Fatalf("runner.ci_half_width = %v", hw)
	}
	// The whole registry must survive a JSON round-trip (finite floats).
	if _, err := json.Marshal(reg.Snapshot()); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}
