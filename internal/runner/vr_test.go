package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/blocks"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/vr"
)

func vrOpts() Options {
	o := quickOpts()
	o.Replications = 8
	o.VarianceReduction = vr.ModeAntithetic
	return o
}

// The pair-mean estimate must be unbiased: on the base scenario, across
// several seeds, the antithetic estimate and the plain estimate of the same
// replication budget must agree within their combined confidence intervals.
func TestAntitheticEstimateUnbiased(t *testing.T) {
	cfg := cluster.Default()
	for _, seed := range []uint64{3, 5, 7} {
		av := vrOpts()
		av.Seed = seed
		vrRes, err := Estimate(cfg, av)
		if err != nil {
			t.Fatal(err)
		}
		pl := quickOpts()
		pl.Replications = 8
		pl.Seed = seed
		plainRes, err := Estimate(cfg, pl)
		if err != nil {
			t.Fatal(err)
		}
		tol := vrRes.UsefulWorkFraction.HalfWide + plainRes.UsefulWorkFraction.HalfWide
		if diff := math.Abs(vrRes.UsefulWorkFraction.Mean - plainRes.UsefulWorkFraction.Mean); diff > tol {
			t.Fatalf("seed %d: antithetic mean %v vs plain mean %v: |Δ| = %v > %v",
				seed, vrRes.UsefulWorkFraction.Mean, plainRes.UsefulWorkFraction.Mean, diff, tol)
		}
		if vrRes.VR == nil {
			t.Fatal("antithetic estimate carries no VR report")
		}
		if vrRes.VR.Pairs != 4 {
			t.Fatalf("VR pairs = %d, want 4", vrRes.VR.Pairs)
		}
		if vrRes.UsefulWorkFraction.N != 4 {
			t.Fatalf("interval N = %d, want 4 pairs", vrRes.UsefulWorkFraction.N)
		}
	}
}

// Antithetic pairing on the base scenario must actually reduce variance:
// negative leg correlation and a measured factor above 1.
func TestAntitheticEstimateEffective(t *testing.T) {
	o := vrOpts()
	o.Replications = 16
	res, err := Estimate(cluster.Default(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.VR.LegCorrelation >= 0 {
		t.Fatalf("leg correlation = %v, want negative", res.VR.LegCorrelation)
	}
	if res.VR.Factor <= 1 {
		t.Fatalf("VR factor = %v, want > 1 on the base scenario", res.VR.Factor)
	}
}

// Leg assignment, like seed assignment, is fixed by the plan before
// dispatch: the antithetic estimate must be bit-identical at every worker
// count.
func TestAntitheticWorkerInvariance(t *testing.T) {
	cfg := cluster.Default()
	seq := vrOpts()
	seq.Workers = 1
	want, err := Estimate(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		o := vrOpts()
		o.Workers = workers
		got, err := Estimate(cfg, o)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d antithetic result differs from sequential:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// An odd replication count cannot form pairs; withDefaults completes the
// last pair instead of erroring.
func TestAntitheticOddReplicationsRoundUp(t *testing.T) {
	o := vrOpts()
	o.Replications = 5
	res, err := Estimate(cluster.Default(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerReplication) != 6 {
		t.Fatalf("replications = %d, want 6 (rounded to pairs)", len(res.PerReplication))
	}
	if res.VR.Pairs != 3 {
		t.Fatalf("pairs = %d, want 3", res.VR.Pairs)
	}
}

// The antithetic journal: legs tagged, seeds shared within a pair, the
// estimate record carrying the vr block and the paired convergence
// trajectory.
func TestAntitheticJournal(t *testing.T) {
	var buf bytes.Buffer
	o := vrOpts()
	o.Journal = obs.NewJournal(&buf)
	if _, err := Estimate(cluster.Default(), o); err != nil {
		t.Fatal(err)
	}
	recs := journalLines(t, &buf)
	n := o.Replications
	if len(recs) != n+1 {
		t.Fatalf("got %d records, want %d", len(recs), n+1)
	}
	for r := 0; r < n; r++ {
		rec := recs[r]
		if rec["kind"] != "replication" {
			t.Fatalf("record %d kind = %v", r, rec["kind"])
		}
		if rec["vr_leg"] != float64(r%2) {
			t.Fatalf("record %d vr_leg = %v, want %d", r, rec["vr_leg"], r%2)
		}
	}
	for p := 0; p < n/2; p++ {
		if recs[2*p]["seed"] != recs[2*p+1]["seed"] {
			t.Fatalf("pair %d legs carry different seeds: %v vs %v", p, recs[2*p]["seed"], recs[2*p+1]["seed"])
		}
		if p > 0 && recs[2*p]["seed"] == recs[2*p-2]["seed"] {
			t.Fatalf("pairs %d and %d share a seed", p-1, p)
		}
	}
	est := recs[n]
	vrField, ok := est["vr"].(map[string]any)
	if !ok {
		t.Fatalf("estimate record has no vr block: %v", est)
	}
	if vrField["mode"] != "antithetic" {
		t.Fatalf("vr mode = %v", vrField["mode"])
	}
	if vrField["pairs"] != float64(n/2) {
		t.Fatalf("vr pairs = %v, want %d", vrField["pairs"], n/2)
	}
	if _, ok := vrField["factor"]; !ok {
		t.Fatal("vr block missing factor")
	}
	iv := est["useful_fraction"].(map[string]any)
	if iv["n"] != float64(n/2) {
		t.Fatalf("interval n = %v, want %d pairs", iv["n"], n/2)
	}
	conv, ok := est["convergence"].([]any)
	if !ok || len(conv) != n/2-1 {
		t.Fatalf("paired convergence = %v entries, want %d", len(conv), n/2-1)
	}
}

// The tentpole's distribution guarantee: a block-sharded antithetic sweep,
// run through lease claiming and journal reduce, must produce the same
// journal bytes (modulo timestamps) as the monolithic run of the same plan —
// pair assignment lives in planning, so sharding cannot split or reorder
// pairs.
func TestShardedAntitheticMatchesMonolithic(t *testing.T) {
	cfg := cluster.Default()
	o := vrOpts()
	o.Label = "vrshard"

	// Monolithic journal.
	var mono bytes.Buffer
	mo := o
	mo.Journal = obs.NewJournal(&mono)
	if _, err := Estimate(cfg, mo); err != nil {
		t.Fatal(err)
	}

	// Sharded: same cell planned at block size 3 (rounded to 4 by the
	// planner so pairs stay whole), executed by two workers, reduced.
	m, err := PlanGrid("vrshard", []blocks.Cell{{
		Label: "vrshard", Seed: o.Seed, Replications: o.Replications, Config: cfg,
	}}, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.VR != blocks.VRAntithetic {
		t.Fatalf("manifest VR = %q", m.VR)
	}
	if m.BlockSize%2 != 0 {
		t.Fatalf("planner left an odd block size %d under VR", m.BlockSize)
	}
	dir := t.TempDir()
	if err := blocks.CreateRun(dir, m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"w1", "w2"} {
		if _, err := blocks.Work(context.Background(), dir, BlockRunner(1, nil),
			blocks.WorkerOptions{Name: name, ExitWhenIdle: true, Heartbeat: -1}); err != nil {
			t.Fatal(err)
		}
	}
	_, cells, err := blocks.Reduce(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := blocks.WriteReduced(obs.NewJournal(&sharded), m, cells); err != nil {
		t.Fatal(err)
	}

	want := journalLines(t, &mono)
	got := journalLines(t, &sharded)
	if len(got) != len(want) {
		t.Fatalf("sharded journal has %d records, monolithic %d", len(got), len(want))
	}
	for i := range want {
		w, _ := json.Marshal(want[i])
		g, _ := json.Marshal(got[i])
		if !bytes.Equal(w, g) {
			t.Fatalf("record %d differs:\n sharded  %s\n monolith %s", i, g, w)
		}
	}
}

// The CRN audit: identical configurations on hardened per-purpose streams
// are perfectly synchronized; a pair of different configurations still gets
// a full report with every purpose accounted for.
func TestCompareSyncReport(t *testing.T) {
	a := cluster.Default()
	o := quickOpts()
	o.Replications = 4
	o.SyncReport = true

	same, err := Compare(a, a, o)
	if err != nil {
		t.Fatal(err)
	}
	if same.Sync == nil {
		t.Fatal("SyncReport requested but Comparison.Sync is nil")
	}
	if same.Sync.Pairs != 4 {
		t.Fatalf("pairs = %d", same.Sync.Pairs)
	}
	if same.Sync.InSyncFraction != 1 {
		t.Fatalf("identical configs out of sync: in-sync fraction = %v", same.Sync.InSyncFraction)
	}
	if same.FractionDiff.Mean != 0 || same.FractionDiff.HalfWide != 0 {
		t.Fatalf("identical configs differ: %+v", same.FractionDiff)
	}

	b := a
	b.MTTR *= 2
	diff, err := Compare(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Sync == nil {
		t.Fatal("Sync nil on differing configs")
	}
	names := diff.Sync.Components
	if len(names) == 0 {
		t.Fatal("sync report has no components")
	}
	var drew int
	for _, c := range names {
		if c.MeanDrawsA > 0 || c.MeanDrawsB > 0 {
			drew++
		}
	}
	if drew == 0 {
		t.Fatal("no purpose consumed any draws")
	}
	// CRN should still correlate the outputs strongly for a modest MTTR
	// change.
	if diff.Sync.OutputCorrelation <= 0 {
		t.Fatalf("output correlation = %v, want positive under CRN", diff.Sync.OutputCorrelation)
	}

	// Without the flag the comparison carries no report.
	o.SyncReport = false
	plain, err := Compare(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sync != nil {
		t.Fatal("Sync set without SyncReport")
	}
}
