package analytic

import (
	"fmt"
	"math"
)

// ExpectedCoordinationTruncated returns E[min(Y, timeout)] where Y is the
// max of n i.i.d. exponentials with mean mttq — the expected length of the
// quiesce phase when the master aborts at the timeout. It integrates the
// survival function numerically (Simpson's rule): E[min(Y,T)] =
// ∫₀ᵀ (1 − F_Y(t)) dt with F_Y(t) = (1 − e^{−t/θ})ⁿ.
//
// timeout ≤ 0 means no timeout and returns the full expectation MTTQ·H_n.
func ExpectedCoordinationTruncated(n int, mttq, timeout float64) float64 {
	if n <= 0 || mttq <= 0 {
		return 0
	}
	if timeout <= 0 {
		return ExpectedCoordinationTime(n, mttq)
	}
	survival := func(t float64) float64 {
		// 1 - (1-e^{-t/θ})^n, computed in log space for large n.
		return -math.Expm1(float64(n) * math.Log1p(-math.Exp(-t/mttq)))
	}
	const steps = 2000 // even
	h := timeout / steps
	sum := survival(0) + survival(timeout)
	for i := 1; i < steps; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * survival(float64(i)*h)
	}
	return sum * h / 3
}

// CoordinationEfficiency is the renewal-process approximation of the full
// model's useful-work fraction under coordination, timeouts and failures —
// the analytic counterpart of Figures 5 and 6. Derivation: checkpoint
// attempts repeat every interval+q hours (q = E[min(Y, timeout)]) and
// succeed with probability 1−p (p = CoordinationAbortProbability), so a
// committed checkpoint cycle spans W = (interval+q)/(1−p) + dump hours of
// wall time containing interval/(interval+q)·(W−dump) hours of execution.
// Failures at rate λ=1/mtbf lose the work accrued since the last commit
// and cost a restart R, giving the classic correction
// λW/(e^{λW}−1)·e^{−λR}.
//
// Returned values: the predicted useful-work fraction and the abort
// probability p.
func CoordinationEfficiency(n int, mttq, timeout, interval, dump, restart, mtbf float64) (float64, float64, error) {
	if interval <= 0 || mtbf <= 0 {
		return 0, 0, fmt.Errorf("analytic: interval %v and MTBF %v must be positive", interval, mtbf)
	}
	if n <= 0 || mttq < 0 || timeout < 0 || dump < 0 || restart < 0 {
		return 0, 0, fmt.Errorf("analytic: invalid coordination parameters n=%d mttq=%v timeout=%v dump=%v restart=%v",
			n, mttq, timeout, dump, restart)
	}
	var q, p float64
	if mttq > 0 {
		q = ExpectedCoordinationTruncated(n, mttq, timeout)
		p = CoordinationAbortProbability(n, mttq, timeout)
	}
	if p >= 1 {
		return 0, 1, nil
	}
	attempts := 1 / (1 - p)
	wall := attempts*(interval+q) + dump
	execShare := attempts * interval / wall
	lambda := 1 / mtbf
	x := lambda * wall
	failFactor := 1.0
	if x > 1e-12 {
		failFactor = x / math.Expm1(x)
	}
	eff := execShare * failFactor * math.Exp(-lambda*restart)
	return eff, p, nil
}

// OptimalTimeoutAnalytic finds the master timeout maximising the renewal
// model's predicted useful-work fraction by golden-section search over
// (lowerBound, upperBound), and returns (bestTimeout, predictedFraction).
// It quantifies the paper's §7.2 observation that the system is
// insensitive to timeouts above a threshold: the returned optimum sits
// just past the coordination-time scale MTTQ·H_n.
func OptimalTimeoutAnalytic(n int, mttq, interval, dump, restart, mtbf, lowerBound, upperBound float64) (float64, float64, error) {
	if lowerBound <= 0 || upperBound <= lowerBound {
		return 0, 0, fmt.Errorf("analytic: invalid timeout bounds [%v, %v]", lowerBound, upperBound)
	}
	f := func(timeout float64) float64 {
		eff, _, err := CoordinationEfficiency(n, mttq, timeout, interval, dump, restart, mtbf)
		if err != nil {
			return -1
		}
		return eff
	}
	const phi = 0.6180339887498949
	a, b := lowerBound, upperBound
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 200 && b-a > 1e-9*upperBound; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		}
	}
	best := (a + b) / 2
	return best, f(best), nil
}

// LatencyAwareEfficiency extends Efficiency with the checkpoint
// overhead/latency distinction of Vaidya [12]: overhead C is the time the
// application is stalled per checkpoint, while latency L ≥ C is the time
// until the checkpoint is committed to stable storage. A failure landing
// within the extra exposure L−C after the application resumes still rolls
// back to the previous checkpoint, so the failure-exposure term uses
// interval+L while the wall-time term uses interval+C:
//
//	eff = interval / [ e^{λR} · (1/λ) · (e^{λ(interval+L)} − 1) · (interval+C)/(interval+L) ]
//
// With L = C this reduces exactly to Efficiency.
func LatencyAwareEfficiency(interval, overhead, latency, restart, mtbf float64) (float64, error) {
	if interval <= 0 || mtbf <= 0 {
		return 0, fmt.Errorf("analytic: interval %v and MTBF %v must be positive", interval, mtbf)
	}
	if overhead < 0 || restart < 0 {
		return 0, fmt.Errorf("analytic: negative overhead %v or restart %v", overhead, restart)
	}
	if latency < overhead {
		return 0, fmt.Errorf("analytic: latency %v below overhead %v", latency, overhead)
	}
	lambda := 1 / mtbf
	exposure := math.Expm1(lambda*(interval+latency)) / lambda
	scale := (interval + overhead) / (interval + latency)
	expected := math.Exp(lambda*restart) * exposure * scale
	return interval / expected, nil
}
