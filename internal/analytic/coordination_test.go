package analytic

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
)

func TestTruncatedCoordinationLimits(t *testing.T) {
	mttq := cluster.Seconds(10)
	const n = 8192
	full := ExpectedCoordinationTime(n, mttq)
	// No timeout → full expectation.
	if got := ExpectedCoordinationTruncated(n, mttq, 0); math.Abs(got-full) > 1e-12 {
		t.Fatalf("no-timeout truncation = %v, want %v", got, full)
	}
	// Huge timeout → approaches the full expectation.
	if got := ExpectedCoordinationTruncated(n, mttq, cluster.Minutes(30)); math.Abs(got-full)/full > 1e-3 {
		t.Fatalf("huge-timeout truncation = %v, want ≈ %v", got, full)
	}
	// Tiny timeout → approaches the timeout itself (almost surely hit).
	tiny := cluster.Seconds(5)
	if got := ExpectedCoordinationTruncated(n, mttq, tiny); math.Abs(got-tiny)/tiny > 0.01 {
		t.Fatalf("tiny-timeout truncation = %v, want ≈ %v", got, tiny)
	}
	// Monotone in the timeout.
	prev := 0.0
	for _, sec := range []float64{10, 40, 80, 120, 300} {
		got := ExpectedCoordinationTruncated(n, mttq, cluster.Seconds(sec))
		if got < prev {
			t.Fatalf("truncated expectation not monotone at %vs", sec)
		}
		prev = got
	}
	if ExpectedCoordinationTruncated(0, mttq, 1) != 0 {
		t.Fatal("degenerate n should give 0")
	}
}

// TestTruncatedMatchesSampling cross-checks the integral against direct
// sampling of min(Y, T).
func TestTruncatedMatchesSampling(t *testing.T) {
	const n = 4096
	mttq := cluster.Seconds(10)
	timeout := cluster.Seconds(100)
	want := ExpectedCoordinationTruncated(n, mttq, timeout)
	d := rng.MaxOfNExponentials{N: n, PerNodeMean: mttq}
	src := rng.New(7)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		y := d.Sample(src)
		if y > timeout {
			y = timeout
		}
		sum += y
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("sampled %v vs integral %v", got, want)
	}
}

func TestCoordinationEfficiencyLimits(t *testing.T) {
	mttq := cluster.Seconds(10)
	interval := cluster.Minutes(30)
	dump := cluster.Seconds(47)

	// Without failures (huge MTBF) and without timeout this reduces to
	// the failure-free fraction interval/(interval+E[Y]+dump).
	eff, p, err := CoordinationEfficiency(65536, mttq, 0, interval, dump, cluster.Minutes(10), 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("abort probability without timeout = %v", p)
	}
	want := FailureFreeFraction(interval, ExpectedCoordinationTime(65536, mttq), dump)
	if math.Abs(eff-want) > 1e-6 {
		t.Fatalf("failure-free coordination efficiency = %v, want %v", eff, want)
	}

	// A suicidal timeout (20 s at 64K processors) gives p ≈ 1, eff ≈ 0.
	eff, p, err = CoordinationEfficiency(65536, mttq, cluster.Seconds(20), interval, dump, cluster.Minutes(10), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 || eff > 1e-3 {
		t.Fatalf("collapse case: eff=%v p=%v", eff, p)
	}
}

// TestCoordinationEfficiencyReproducesFig6Ordering: the analytic model
// predicts the same timeout ordering the simulation shows at 8192
// processors with MTTF 3 yr (Figure 6): 120 s ≈ no timeout > 80 s ≫ 40 s.
func TestCoordinationEfficiencyReproducesFig6Ordering(t *testing.T) {
	mttq := cluster.Seconds(10)
	interval := cluster.Minutes(30)
	dump := cluster.Seconds(47)
	restart := cluster.Minutes(10)
	mtbf := cluster.Years(3) / 1024 // 1024 nodes

	eval := func(timeout float64) float64 {
		eff, _, err := CoordinationEfficiency(8192, mttq, timeout, interval, dump, restart, mtbf)
		if err != nil {
			t.Fatal(err)
		}
		return eff
	}
	noTimeout := eval(0)
	e120 := eval(cluster.Seconds(120))
	e80 := eval(cluster.Seconds(80))
	e40 := eval(cluster.Seconds(40))
	if math.Abs(e120-noTimeout) > 0.02 {
		t.Fatalf("120s (%v) should be close to no timeout (%v)", e120, noTimeout)
	}
	if !(e80 < e120-0.05) {
		t.Fatalf("80s (%v) should be clearly below 120s (%v)", e80, e120)
	}
	if !(e40 < e80) {
		t.Fatalf("40s (%v) should be below 80s (%v)", e40, e80)
	}
}

func TestCoordinationEfficiencyValidation(t *testing.T) {
	if _, _, err := CoordinationEfficiency(10, 1, 0, 0, 0, 0, 1); err == nil {
		t.Error("zero interval accepted")
	}
	if _, _, err := CoordinationEfficiency(0, 1, 0, 1, 0, 0, 1); err == nil {
		t.Error("zero n accepted")
	}
	if _, _, err := CoordinationEfficiency(10, -1, 0, 1, 0, 0, 1); err == nil {
		t.Error("negative mttq accepted")
	}
}

func TestLatencyAwareReducesToEfficiency(t *testing.T) {
	interval, overhead, restart, mtbf := 0.5, 0.016, 0.167, 1.07
	base, err := Efficiency(interval, overhead, restart, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	same, err := LatencyAwareEfficiency(interval, overhead, overhead, restart, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-same) > 1e-12 {
		t.Fatalf("L=C should reduce to Efficiency: %v vs %v", same, base)
	}
}

func TestLatencyAwareMonotoneInLatency(t *testing.T) {
	interval, overhead, restart, mtbf := 0.5, 0.016, 0.167, 1.07
	prev := math.Inf(1)
	for _, latency := range []float64{0.016, 0.05, 0.1, 0.2} {
		eff, err := LatencyAwareEfficiency(interval, overhead, latency, restart, mtbf)
		if err != nil {
			t.Fatal(err)
		}
		if eff >= prev {
			t.Fatalf("efficiency not decreasing in latency at L=%v", latency)
		}
		prev = eff
	}
}

func TestLatencyAwareValidation(t *testing.T) {
	if _, err := LatencyAwareEfficiency(0, 1, 1, 1, 1); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := LatencyAwareEfficiency(1, 0.5, 0.4, 1, 1); err == nil {
		t.Error("latency below overhead accepted")
	}
	if _, err := LatencyAwareEfficiency(1, -1, 1, 1, 1); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestOptimalTimeoutAnalytic(t *testing.T) {
	mttq := cluster.Seconds(10)
	interval := cluster.Minutes(30)
	dump := cluster.Seconds(47)
	restart := cluster.Minutes(10)
	mtbf := cluster.Years(3) / 8192

	best, eff, err := OptimalTimeoutAnalytic(65536, mttq, interval, dump, restart, mtbf,
		cluster.Seconds(10), cluster.Minutes(10))
	if err != nil {
		t.Fatal(err)
	}
	// The optimum must sit past the coordination scale E[Y] ≈ 117 s and
	// must not beat the no-timeout efficiency (timeouts only ever abort).
	ey := ExpectedCoordinationTime(65536, mttq)
	if best < ey {
		t.Fatalf("optimal timeout %v below E[Y] %v", best, ey)
	}
	noTimeout, _, err := CoordinationEfficiency(65536, mttq, 0, interval, dump, restart, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	if eff > noTimeout+1e-9 {
		t.Fatalf("timeout efficiency %v beats no-timeout %v", eff, noTimeout)
	}
	if eff < noTimeout*0.95 {
		t.Fatalf("optimal timeout efficiency %v far below no-timeout %v", eff, noTimeout)
	}
	if _, _, err := OptimalTimeoutAnalytic(100, mttq, interval, dump, restart, mtbf, -1, 1); err == nil {
		t.Fatal("invalid bounds accepted")
	}
	if _, _, err := OptimalTimeoutAnalytic(100, mttq, interval, dump, restart, mtbf, 2, 1); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}
