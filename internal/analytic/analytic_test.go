package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/rng"
)

func TestYoungKnownValue(t *testing.T) {
	// δ = 56.8 s ≈ 0.01578 h (Table 3 dump+quiesce), system MTBF ≈ 1.07 h
	// (8192 nodes at 1 yr): τ_opt = √(2·δ·M) ≈ 0.184 h ≈ 11 min — the
	// paper's remark that the theoretical optimum is below 15 minutes.
	mtbf, err := SystemMTBF(8192, cluster.Years(1))
	if err != nil {
		t.Fatal(err)
	}
	tau, err := YoungOptimalInterval(cluster.Seconds(56.8), mtbf)
	if err != nil {
		t.Fatal(err)
	}
	if tau < cluster.Minutes(8) || tau > cluster.Minutes(15) {
		t.Fatalf("Young optimum = %v h, want under 15 minutes (paper §7.1)", tau)
	}
}

func TestYoungFormula(t *testing.T) {
	tau, err := YoungOptimalInterval(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-20) > 1e-12 {
		t.Fatalf("√(2·2·100) = %v, want 20", tau)
	}
}

func TestDalyReducesToYoungForSmallOverhead(t *testing.T) {
	// For δ ≪ M, Daly ≈ Young − δ + small correction.
	young, _ := YoungOptimalInterval(0.001, 1000)
	daly, err := DalyOptimalInterval(0.001, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(daly-young)/young > 0.01 {
		t.Fatalf("Daly %v far from Young %v at tiny overhead", daly, young)
	}
}

func TestDalyLargeOverheadClamp(t *testing.T) {
	daly, err := DalyOptimalInterval(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if daly != 4 {
		t.Fatalf("δ ≥ 2M should clamp to MTBF: got %v", daly)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := YoungOptimalInterval(0, 1); err == nil {
		t.Error("Young accepted zero overhead")
	}
	if _, err := DalyOptimalInterval(1, 0); err == nil {
		t.Error("Daly accepted zero MTBF")
	}
	if _, err := Efficiency(0, 1, 1, 1); err == nil {
		t.Error("Efficiency accepted zero interval")
	}
	if _, err := Efficiency(1, -1, 1, 1); err == nil {
		t.Error("Efficiency accepted negative overhead")
	}
	if _, _, err := OptimalEfficiency(0, 1, 1); err == nil {
		t.Error("OptimalEfficiency accepted zero overhead")
	}
	if _, err := SystemMTBF(0, 1); err == nil {
		t.Error("SystemMTBF accepted zero nodes")
	}
}

func TestEfficiencyLimits(t *testing.T) {
	// With a huge MTBF and tiny overhead, efficiency approaches
	// τ/(τ+δ).
	eff, err := Efficiency(1, 0.01, 0.1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-1/1.01) > 1e-4 {
		t.Fatalf("failure-free efficiency = %v, want ≈ %v", eff, 1/1.01)
	}
	// Tiny MTBF: efficiency collapses.
	eff2, err := Efficiency(1, 0.01, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if eff2 > 0.01 {
		t.Fatalf("efficiency at MTBF≪τ = %v, want ≈0", eff2)
	}
}

func TestOptimalEfficiencyBeatsNeighbours(t *testing.T) {
	overhead, restart, mtbf := 0.016, 0.167, 1.07
	tau, best, err := OptimalEfficiency(overhead, restart, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, 0.8, 1.25, 2.0} {
		e, _ := Efficiency(tau*f, overhead, restart, mtbf)
		if e > best+1e-9 {
			t.Fatalf("interval %v beats 'optimum' %v: %v > %v", tau*f, tau, e, best)
		}
	}
	// Golden-section optimum should be near Daly's closed form.
	daly, _ := DalyOptimalInterval(overhead, mtbf)
	if math.Abs(tau-daly)/daly > 0.15 {
		t.Fatalf("numeric optimum %v far from Daly %v", tau, daly)
	}
}

func TestExpectedCoordinationTimeLogarithmic(t *testing.T) {
	mttq := cluster.Seconds(10)
	// Doubling n adds ≈ MTTQ·ln2 for large n.
	e1 := ExpectedCoordinationTime(1<<20, mttq)
	e2 := ExpectedCoordinationTime(1<<21, mttq)
	if math.Abs((e2-e1)-mttq*math.Ln2) > 1e-9 {
		t.Fatalf("doubling increment = %v, want MTTQ·ln2 = %v", e2-e1, mttq*math.Ln2)
	}
	if ExpectedCoordinationTime(0, mttq) != 0 || ExpectedCoordinationTime(5, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestCoordinationAbortProbability(t *testing.T) {
	mttq := cluster.Seconds(10)
	// Timeout far above E[Y]: almost never aborts.
	if p := CoordinationAbortProbability(8192, mttq, cluster.Minutes(10)); p > 1e-6 {
		t.Fatalf("huge timeout abort prob = %v", p)
	}
	// Timeout far below E[Y]: almost always aborts.
	if p := CoordinationAbortProbability(8192, mttq, cluster.Seconds(20)); p < 0.99 {
		t.Fatalf("tiny timeout abort prob = %v", p)
	}
	// Monotone decreasing in timeout.
	prev := 1.0
	for _, sec := range []float64{20, 40, 60, 80, 100, 120} {
		p := CoordinationAbortProbability(65536, mttq, cluster.Seconds(sec))
		if p > prev+1e-12 {
			t.Fatalf("abort probability not monotone at %vs", sec)
		}
		prev = p
	}
	if CoordinationAbortProbability(100, mttq, 0) != 0 {
		t.Fatal("no timeout should mean no aborts")
	}
}

// TestAbortProbabilityMatchesSampling cross-checks the closed form against
// direct sampling of the max-of-n distribution.
func TestAbortProbabilityMatchesSampling(t *testing.T) {
	const n = 4096
	mttq := cluster.Seconds(10)
	timeout := cluster.Seconds(80)
	want := CoordinationAbortProbability(n, mttq, timeout)
	d := rng.MaxOfNExponentials{N: n, PerNodeMean: mttq}
	src := rng.New(42)
	const trials = 50000
	aborts := 0
	for i := 0; i < trials; i++ {
		if d.Sample(src) > timeout {
			aborts++
		}
	}
	got := float64(aborts) / trials
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("sampled abort rate %v vs closed form %v", got, want)
	}
}

func TestFailureFreeFraction(t *testing.T) {
	if f := FailureFreeFraction(0.5, 0.0028, 0.013); math.Abs(f-0.5/(0.5+0.0028+0.013)) > 1e-12 {
		t.Fatalf("fraction = %v", f)
	}
	if FailureFreeFraction(0, 1, 1) != 0 {
		t.Fatal("zero interval should give 0")
	}
}

func TestSystemMTBF(t *testing.T) {
	m, err := SystemMTBF(8192, cluster.Years(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-cluster.Years(1)/8192) > 1e-12 {
		t.Fatalf("system MTBF = %v", m)
	}
}

// TestEfficiencyMonotoneInMTBF: more reliable systems are never less
// efficient, for arbitrary parameters.
func TestEfficiencyMonotoneInMTBF(t *testing.T) {
	f := func(iRaw, oRaw, mRaw uint16) bool {
		interval := float64(iRaw%1000+1) / 100
		overhead := float64(oRaw%100+1) / 1000
		m1 := float64(mRaw%100+1) / 10
		m2 := m1 * 2
		e1, err1 := Efficiency(interval, overhead, 0.1, m1)
		e2, err2 := Efficiency(interval, overhead, 0.1, m2)
		return err1 == nil && err2 == nil && e2 >= e1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
