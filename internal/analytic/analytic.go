// Package analytic implements the closed-form checkpointing models the
// paper compares against: Young's first-order optimum interval [7], Daly's
// higher-order model and expected-efficiency formula [8], and small
// coordination-overhead predictions used to cross-check the simulator
// (Figure 5's logarithmic coordination effect).
//
// These baselines deliberately ignore coordination overhead and correlated
// failures — that gap is the paper's motivation, and the experiments
// contrast them with the SAN simulation.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// YoungOptimalInterval returns Young's first-order optimum checkpoint
// interval √(2·δ·M), where δ is the checkpoint overhead (time to take one
// checkpoint) and M the system mean time between failures [7].
func YoungOptimalInterval(overhead, mtbf float64) (float64, error) {
	if overhead <= 0 || mtbf <= 0 {
		return 0, fmt.Errorf("analytic: overhead %v and MTBF %v must be positive", overhead, mtbf)
	}
	return math.Sqrt(2 * overhead * mtbf), nil
}

// DalyOptimalInterval returns Daly's higher-order optimum compute interval
// for restart dumps [8]:
//
//	τ_opt = √(2δM)·[1 + ⅓·√(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	τ_opt = M                                                 otherwise.
func DalyOptimalInterval(overhead, mtbf float64) (float64, error) {
	if overhead <= 0 || mtbf <= 0 {
		return 0, fmt.Errorf("analytic: overhead %v and MTBF %v must be positive", overhead, mtbf)
	}
	if overhead >= 2*mtbf {
		return mtbf, nil
	}
	x := overhead / (2 * mtbf)
	return math.Sqrt(2*overhead*mtbf)*(1+math.Sqrt(x)/3+x/9) - overhead, nil
}

// Efficiency returns the expected useful-work fraction of the classic
// exponential-failure checkpoint/restart model (the integral Daly builds
// on): segments of τ useful work cost τ+δ wall time; a failure at rate
// λ=1/M forces a restart of length R and the loss of the in-progress
// segment. The expected wall time per segment is
//
//	E = e^{λR}·(1/λ)·(e^{λ(τ+δ)} − 1),
//
// so efficiency = τ / E.
func Efficiency(interval, overhead, restart, mtbf float64) (float64, error) {
	if interval <= 0 || mtbf <= 0 {
		return 0, fmt.Errorf("analytic: interval %v and MTBF %v must be positive", interval, mtbf)
	}
	if overhead < 0 || restart < 0 {
		return 0, fmt.Errorf("analytic: negative overhead %v or restart %v", overhead, restart)
	}
	lambda := 1 / mtbf
	expected := math.Exp(lambda*restart) / lambda * (math.Exp(lambda*(interval+overhead)) - 1)
	return interval / expected, nil
}

// OptimalEfficiency maximises Efficiency over the interval by golden-
// section search on (ε, bound] and returns (bestInterval, bestEfficiency).
func OptimalEfficiency(overhead, restart, mtbf float64) (float64, float64, error) {
	if overhead <= 0 || mtbf <= 0 {
		return 0, 0, fmt.Errorf("analytic: overhead %v and MTBF %v must be positive", overhead, mtbf)
	}
	lo, hi := 1e-6, 10*mtbf
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f := func(t float64) float64 {
		e, _ := Efficiency(t, overhead, restart, mtbf)
		return e
	}
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 200 && b-a > 1e-9*hi; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		}
	}
	best := (a + b) / 2
	return best, f(best), nil
}

// ExpectedCoordinationTime returns E[max of n i.i.d. exponentials] =
// MTTQ·H_n, the paper's coordination time (Section 7.2: "the coordination
// effect is logarithmic in the number of compute processors").
func ExpectedCoordinationTime(n int, mttq float64) float64 {
	if n <= 0 || mttq <= 0 {
		return 0
	}
	return mttq * rng.HarmonicNumber(n)
}

// CoordinationAbortProbability returns P(coordination exceeds the timeout):
// 1 − (1−e^{−t/MTTQ})^n, the probabilistic checkpoint-abort rate of the
// timeout mechanism (Section 7.2).
func CoordinationAbortProbability(n int, mttq, timeout float64) float64 {
	if n <= 0 || mttq <= 0 {
		return 0
	}
	if timeout <= 0 {
		return 0 // no timeout mechanism
	}
	// log form for numerical stability at large n.
	logP := float64(n) * math.Log1p(-math.Exp(-timeout/mttq))
	return -math.Expm1(logP)
}

// FailureFreeFraction predicts the useful-work fraction with coordination
// but no failures or timeouts (Figure 5): each cycle spends interval hours
// of useful work plus coordination and dump overhead.
func FailureFreeFraction(interval, coordTime, dumpTime float64) float64 {
	if interval <= 0 {
		return 0
	}
	return interval / (interval + coordTime + dumpTime)
}

// SystemMTBF returns the system mean time between failures for n nodes
// with per-node MTTF m: m/n (independent exponential superposition).
func SystemMTBF(nodes int, mttfPerNode float64) (float64, error) {
	if nodes <= 0 || mttfPerNode <= 0 {
		return 0, fmt.Errorf("analytic: nodes %d and MTTF %v must be positive", nodes, mttfPerNode)
	}
	return mttfPerNode / float64(nodes), nil
}
