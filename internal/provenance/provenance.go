// Package provenance identifies the observation conditions of a run: which
// binary (git commit, dirty flag, go version), on which platform (GOOS,
// GOARCH, CPU model, host), against which configuration (a content hash of
// the active scenario/config). A Stamp travels with every artifact the
// simulator emits — benchmark reports, run journals, sweep manifests,
// worker heartbeats, the /buildz debug endpoint — so that longitudinal
// comparisons ("did this PR erode the hot loop?", "are these two sweep
// rows like-for-like?") can first check they are comparing comparable
// things. Field-failure studies live or die on exactly this discipline:
// operational data without provenance cannot be trusted across time.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the repository (obs, blocks, runner, the CLIs) can stamp
// without cycles.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Stamp records where an observation came from. The zero value is a valid
// "unknown provenance" stamp; Collect fills in everything the process can
// know about itself.
type Stamp struct {
	// GitSHA is the VCS revision the binary was built from, via
	// debug.ReadBuildInfo's vcs.revision setting. Empty when the binary
	// was built without VCS stamping (go test binaries, go run).
	GitSHA string `json:"git_sha,omitempty"`
	// GitDirty reports uncommitted changes at build time (vcs.modified).
	GitDirty bool `json:"git_dirty,omitempty"`
	// GitTime is the commit timestamp (vcs.time), RFC3339.
	GitTime string `json:"git_time,omitempty"`
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string `json:"go_version"`
	// Goos and Goarch are the execution platform.
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	// CPU is the processor model name (from /proc/cpuinfo on Linux);
	// empty when undetectable. Benchmark numbers are meaningless across
	// CPU models, so trend tooling partitions on this.
	CPU string `json:"cpu,omitempty"`
	// Host is the machine's hostname.
	Host string `json:"host,omitempty"`
	// ConfigHash content-addresses the active scenario or configuration
	// ("sha256:<hex>", see HashJSON), or carries a manifest hash — set by
	// the caller via WithConfig, since only the caller knows what it runs.
	ConfigHash string `json:"config_hash,omitempty"`
}

var (
	collectOnce sync.Once
	collected   Stamp
)

// Collect returns the process's own stamp. Everything except ConfigHash is
// process-constant, so the work (build-info walk, /proc/cpuinfo read) runs
// once and later calls return the cached copy.
func Collect() Stamp {
	collectOnce.Do(func() {
		collected = Stamp{
			GoVersion: runtime.Version(),
			Goos:      runtime.GOOS,
			Goarch:    runtime.GOARCH,
			CPU:       cpuModel(),
		}
		collected.Host, _ = os.Hostname()
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					collected.GitSHA = s.Value
				case "vcs.modified":
					collected.GitDirty = s.Value == "true"
				case "vcs.time":
					collected.GitTime = s.Value
				}
			}
		}
	})
	return collected
}

// WithConfig returns a copy of the stamp carrying the given config hash.
func (s Stamp) WithConfig(hash string) Stamp {
	s.ConfigHash = hash
	return s
}

// BinaryID condenses the fields that identify the *code* being run — git
// revision, dirty flag and toolchain — into one comparable string. Two
// workers with different BinaryIDs sharing a run directory are producing
// observations that must not be merged silently; host and CPU are
// deliberately excluded because a fleet legitimately spans machines.
func (s Stamp) BinaryID() string {
	rev := s.GitSHA
	if rev == "" {
		rev = "unversioned"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if s.GitDirty {
		rev += "+dirty"
	}
	return rev + "@" + s.GoVersion
}

// String renders the stamp for humans: "abc123def456 go1.22 linux/amd64 @ host".
func (s Stamp) String() string {
	var sb strings.Builder
	rev := s.GitSHA
	if rev == "" {
		rev = "unversioned"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	sb.WriteString(rev)
	if s.GitDirty {
		sb.WriteString("+dirty")
	}
	fmt.Fprintf(&sb, " %s %s/%s", s.GoVersion, s.Goos, s.Goarch)
	if s.Host != "" {
		sb.WriteString(" @ " + s.Host)
	}
	return sb.String()
}

// Fields flattens the stamp into journal fields (omitting empties), for
// embedding in an obs.Journal record.
func (s Stamp) Fields() map[string]any {
	f := map[string]any{
		"go_version": s.GoVersion,
		"goos":       s.Goos,
		"goarch":     s.Goarch,
	}
	if s.GitSHA != "" {
		f["git_sha"] = s.GitSHA
	}
	if s.GitDirty {
		f["git_dirty"] = true
	}
	if s.GitTime != "" {
		f["git_time"] = s.GitTime
	}
	if s.CPU != "" {
		f["cpu"] = s.CPU
	}
	if s.Host != "" {
		f["host"] = s.Host
	}
	if s.ConfigHash != "" {
		f["config_hash"] = s.ConfigHash
	}
	return f
}

// HashJSON content-addresses any JSON-marshalable value as
// "sha256:<hex>". encoding/json emits struct fields in declaration order
// and map keys sorted, so the hash is deterministic for a given value.
func HashJSON(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("provenance: hashing config: %w", err)
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Binaries tallies a fleet's distinct BinaryIDs. More than one entry means
// mixed binaries share a run directory — the mismatch CollectFleet flags.
func Binaries(stamps []*Stamp) map[string]int {
	out := make(map[string]int)
	for _, s := range stamps {
		if s == nil {
			continue
		}
		out[s.BinaryID()]++
	}
	return out
}

// cpuModel reads the processor model name. Linux keeps it in /proc/cpuinfo
// ("model name : ..." on x86, "Processor"/"CPU part" elsewhere); other
// platforms return "" rather than guessing.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(key) {
		case "model name", "Processor", "cpu model":
			return strings.TrimSpace(val)
		}
	}
	return ""
}
