package provenance

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectIsStableAndFilled(t *testing.T) {
	a, b := Collect(), Collect()
	if a != b {
		t.Fatalf("Collect not stable: %+v vs %+v", a, b)
	}
	if a.GoVersion == "" || a.Goos == "" || a.Goarch == "" {
		t.Fatalf("Collect left platform fields empty: %+v", a)
	}
	// ConfigHash is caller-supplied, never collected.
	if a.ConfigHash != "" {
		t.Fatalf("Collect invented a config hash: %q", a.ConfigHash)
	}
}

func TestWithConfigDoesNotMutate(t *testing.T) {
	base := Collect()
	stamped := base.WithConfig("sha256:abc")
	if stamped.ConfigHash != "sha256:abc" {
		t.Fatalf("WithConfig = %q", stamped.ConfigHash)
	}
	if Collect().ConfigHash != "" {
		t.Fatal("WithConfig mutated the cached stamp")
	}
}

func TestBinaryID(t *testing.T) {
	cases := []struct {
		s    Stamp
		want string
	}{
		{Stamp{GoVersion: "go1.22.0"}, "unversioned@go1.22.0"},
		{Stamp{GitSHA: "0123456789abcdef0123", GoVersion: "go1.22.0"}, "0123456789ab@go1.22.0"},
		{Stamp{GitSHA: "0123456789abcdef0123", GitDirty: true, GoVersion: "go1.22.0"}, "0123456789ab+dirty@go1.22.0"},
		{Stamp{GitSHA: "abc", GoVersion: "go1.22.0"}, "abc@go1.22.0"},
	}
	for _, c := range cases {
		if got := c.s.BinaryID(); got != c.want {
			t.Errorf("BinaryID(%+v) = %q, want %q", c.s, got, c.want)
		}
	}
	// Host and CPU must not influence binary identity: a fleet spans machines.
	a := Stamp{GitSHA: "abc", GoVersion: "go1.22.0", Host: "node1", CPU: "EPYC"}
	b := Stamp{GitSHA: "abc", GoVersion: "go1.22.0", Host: "node2", CPU: "Xeon"}
	if a.BinaryID() != b.BinaryID() {
		t.Fatal("BinaryID depends on host/CPU")
	}
}

func TestHashJSONDeterministicAndSensitive(t *testing.T) {
	type cfg struct {
		Procs    int
		Interval float64
	}
	h1, err := HashJSON(cfg{65536, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HashJSON(cfg{65536, 0.5})
	h3, _ := HashJSON(cfg{65536, 0.25})
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Fatal("hash insensitive to config change")
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Fatalf("hash format: %q", h1)
	}
}

func TestFieldsOmitEmpties(t *testing.T) {
	f := Stamp{GoVersion: "go1.22.0", Goos: "linux", Goarch: "amd64"}.Fields()
	for _, key := range []string{"git_sha", "git_dirty", "cpu", "host", "config_hash"} {
		if _, ok := f[key]; ok {
			t.Errorf("empty field %q emitted", key)
		}
	}
	full := Stamp{
		GitSHA: "abc", GitDirty: true, GitTime: "2026-01-01T00:00:00Z",
		GoVersion: "go1.22.0", Goos: "linux", Goarch: "amd64",
		CPU: "EPYC", Host: "h", ConfigHash: "sha256:x",
	}.Fields()
	if len(full) != 9 {
		t.Fatalf("full stamp emitted %d fields: %v", len(full), full)
	}
	if _, err := json.Marshal(full); err != nil {
		t.Fatal(err)
	}
}

func TestBinaries(t *testing.T) {
	a := &Stamp{GitSHA: "aaa", GoVersion: "go1.22.0"}
	b := &Stamp{GitSHA: "bbb", GoVersion: "go1.22.0"}
	got := Binaries([]*Stamp{a, a, b, nil})
	if len(got) != 2 || got[a.BinaryID()] != 2 || got[b.BinaryID()] != 1 {
		t.Fatalf("Binaries = %v", got)
	}
	if len(Binaries(nil)) != 0 {
		t.Fatal("empty fleet not empty")
	}
}

func TestStringRendersRevision(t *testing.T) {
	s := Stamp{GitSHA: "0123456789abcdef", GitDirty: true, GoVersion: "go1.22.0",
		Goos: "linux", Goarch: "amd64", Host: "node9"}
	got := s.String()
	for _, want := range []string{"0123456789ab", "+dirty", "go1.22.0", "linux/amd64", "node9"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q lacks %q", got, want)
		}
	}
}
