package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func TestNewCycleValidation(t *testing.T) {
	if _, err := NewCycle(0, 0.9); err == nil || !strings.Contains(err.Error(), "period") {
		t.Errorf("zero period: err = %v", err)
	}
	if _, err := NewCycle(1, 0); err == nil || !strings.Contains(err.Error(), "fraction") {
		t.Errorf("zero fraction: err = %v", err)
	}
	if _, err := NewCycle(1, 1.1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewCycle(1, 1.0); err != nil {
		t.Errorf("pure compute rejected: %v", err)
	}
}

func TestPhaseDurations(t *testing.T) {
	c, err := NewCycle(cluster.Minutes(3), 0.88)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.ComputeTime()+c.IOTime()-c.Period) > 1e-15 {
		t.Fatal("phases do not sum to period")
	}
	if math.Abs(c.ComputeTime()-0.88*cluster.Minutes(3)) > 1e-15 {
		t.Fatal("compute time wrong")
	}
	if c.PureCompute() {
		t.Fatal("f=0.88 should not be pure compute")
	}
	pure, _ := NewCycle(1, 1)
	if !pure.PureCompute() || pure.IOTime() != 0 {
		t.Fatal("f=1 should be pure compute")
	}
}

func TestPhaseAt(t *testing.T) {
	c, _ := NewCycle(10, 0.8) // compute [0,8), IO [8,10)
	cases := []struct {
		t         float64
		phase     Phase
		remaining float64
	}{
		{0, Compute, 8},
		{4, Compute, 4},
		{7.999, Compute, 0.001},
		{8, IO, 2},
		{9, IO, 1},
		{10, Compute, 8}, // wraps
		{18.5, IO, 1.5},  // second cycle IO
		{-3, Compute, 8}, // negative clamps to 0
	}
	for _, cse := range cases {
		ph, rem := c.PhaseAt(cse.t)
		if ph != cse.phase || math.Abs(rem-cse.remaining) > 1e-9 {
			t.Errorf("PhaseAt(%v) = (%v, %v), want (%v, %v)", cse.t, ph, rem, cse.phase, cse.remaining)
		}
	}
}

func TestPhaseAtPureCompute(t *testing.T) {
	c, _ := NewCycle(5, 1)
	ph, _ := c.PhaseAt(12.3)
	if ph != Compute {
		t.Fatal("pure compute cycle should always be in Compute")
	}
}

func TestPhaseString(t *testing.T) {
	if Compute.String() != "compute" || IO.String() != "io" {
		t.Fatal("phase strings wrong")
	}
	if !strings.Contains(Phase(7).String(), "7") {
		t.Fatal("unknown phase should include value")
	}
}

// TestPhaseAtAlwaysConsistent: remaining time is positive and at most the
// phase duration, for arbitrary cycles and times.
func TestPhaseAtAlwaysConsistent(t *testing.T) {
	f := func(tRaw uint32, fRaw uint16) bool {
		frac := float64(fRaw%99+1) / 100
		c, err := NewCycle(1.0, frac)
		if err != nil {
			return false
		}
		at := float64(tRaw) / 1000
		ph, rem := c.PhaseAt(at)
		if rem <= 0 {
			return false
		}
		switch ph {
		case Compute:
			return rem <= c.ComputeTime()+1e-12
		case IO:
			return rem <= c.IOTime()+1e-12
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsefulFractionUpperBound(t *testing.T) {
	c, _ := NewCycle(1, 0.9)
	if c.UsefulFractionUpperBound() != 1.0 {
		t.Fatal("useful fraction upper bound should be 1 (I/O counts as useful work)")
	}
}
