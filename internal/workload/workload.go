// Package workload models the application of Section 3.3 of the paper: a
// BSP-style parallel scientific job whose tasks alternate between a compute
// phase and a non-preemptive foreground I/O phase with a fixed cycle period
// and compute fraction (Table 3: 3-minute period, fraction 0.88–1.0).
package workload

import (
	"fmt"
	"math"
)

// Phase identifies what the application is doing.
type Phase int

const (
	// Compute is the computation phase; tasks may quiesce at any time.
	Compute Phase = iota + 1
	// IO is the foreground I/O phase; tasks cannot quiesce until it
	// completes (non-preemptive I/O, Section 3.3).
	IO
)

func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case IO:
		return "io"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Cycle is the deterministic compute/I-O alternation of a BSP application.
type Cycle struct {
	// Period is the full cycle length in hours.
	Period float64
	// ComputeFraction is the fraction of the period spent computing.
	ComputeFraction float64
}

// NewCycle validates and returns a Cycle.
func NewCycle(period, computeFraction float64) (Cycle, error) {
	c := Cycle{Period: period, ComputeFraction: computeFraction}
	if err := c.Validate(); err != nil {
		return Cycle{}, err
	}
	return c, nil
}

// Validate reports parameter problems.
func (c Cycle) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("workload: period %v must be positive", c.Period)
	}
	if c.ComputeFraction <= 0 || c.ComputeFraction > 1 {
		return fmt.Errorf("workload: compute fraction %v outside (0,1]", c.ComputeFraction)
	}
	return nil
}

// ComputeTime returns the duration of the compute phase.
func (c Cycle) ComputeTime() float64 { return c.ComputeFraction * c.Period }

// IOTime returns the duration of the foreground I/O phase (0 when the
// application is pure compute).
func (c Cycle) IOTime() float64 { return (1 - c.ComputeFraction) * c.Period }

// PureCompute reports whether the application never does foreground I/O
// (ComputeFraction == 1), in which case the IO phase is skipped entirely.
func (c Cycle) PureCompute() bool { return c.IOTime() == 0 }

// PhaseAt returns the phase and the remaining time in that phase at
// absolute time t, assuming the cycle started (in Compute) at time 0 and
// was never interrupted. Used by the message-level protocol simulator.
func (c Cycle) PhaseAt(t float64) (Phase, float64) {
	if t < 0 {
		t = 0
	}
	pos := math.Mod(t, c.Period)
	if pos < c.ComputeTime() || c.PureCompute() {
		return Compute, c.ComputeTime() - pos
	}
	return IO, c.Period - pos
}

// UsefulFractionUpperBound is the fraction of wall time the application can
// spend making progress in a failure-free, checkpoint-free system: both
// computation and application I/O count as useful work (Section 7 metric
// definition), so this is 1.0 by construction. It exists to document the
// normalisation used by the useful-work reward.
func (c Cycle) UsefulFractionUpperBound() float64 { return 1.0 }
