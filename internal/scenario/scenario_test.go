package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestBuiltinCatalog pins the catalog's shape: it must load, hold at least
// the nine scenarios the CLIs advertise, and include the six legacy
// variants the differential suite pins bit-identically.
func TestBuiltinCatalog(t *testing.T) {
	reg := Builtin()
	names := reg.Names()
	if len(names) < 9 {
		t.Fatalf("builtin catalog has %d scenarios (%v); want at least 9", len(names), names)
	}
	legacy := []string{"base", "max-of-n", "timeout", "error-propagation", "blocking-write", "incremental-ckpt"}
	for _, want := range legacy {
		s, err := reg.Get(want)
		if err != nil {
			t.Errorf("legacy scenario missing: %v", err)
			continue
		}
		if !s.HasTag("legacy") {
			t.Errorf("scenario %q is not tagged legacy", want)
		}
	}
	for _, s := range reg.All() {
		if s.Citation == "" {
			t.Errorf("scenario %q has no citation", s.Name)
		}
		if len(s.Tags) == 0 {
			t.Errorf("scenario %q has no tags", s.Name)
		}
	}
}

// TestSmokeRunEveryScenario builds and runs one deterministic replication
// of every embedded scenario — the test behind `make validate-scenarios`.
// A scenario whose config is mis-unitized (minutes where hours belong, MB
// where bytes belong) lands far outside its expected useful-work band.
func TestSmokeRunEveryScenario(t *testing.T) {
	const horizon = 2000.0
	for _, s := range Builtin().All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := s.ClusterConfig()
			if err != nil {
				t.Fatal(err)
			}
			in, err := model.New(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			mt, err := in.RunSteadyState(horizon/2, horizon/2)
			if err != nil {
				t.Fatal(err)
			}
			u := mt.UsefulWorkFraction
			if u <= 0 || u > 1 {
				t.Fatalf("useful-work fraction %v outside (0,1]", u)
			}
			t.Logf("useful-work fraction %.4f", u)
			if e := s.Expect; e != nil && (u < e.UsefulFractionMin || u > e.UsefulFractionMax) {
				t.Errorf("useful-work fraction %.4f outside expected [%v, %v]",
					u, e.UsefulFractionMin, e.UsefulFractionMax)
			}
		})
	}
}

// TestLoadDirOverridesAndExtends checks the user-directory mechanism: a
// same-named file replaces the built-in, a new name extends the catalog.
func TestLoadDirOverridesAndExtends(t *testing.T) {
	dir := t.TempDir()
	override := `{
		"name": "base",
		"title": "Overridden base",
		"description": "Base with a smaller machine.",
		"citation": "local",
		"tags": ["local"],
		"config": {"processors": 1024}
	}`
	extra := `{
		"name": "my-experiment",
		"title": "Local experiment",
		"description": "A user-supplied setup.",
		"citation": "local",
		"tags": ["local"],
		"config": {"mttfYears": 1}
	}`
	for name, body := range map[string]string{"base.json": override, "extra.json": extra} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reg := Builtin()
	before := len(reg.Names())
	if err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.Names()); got != before+1 {
		t.Fatalf("catalog size %d after override+extend; want %d", got, before+1)
	}
	base, err := reg.Get("base")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := base.ClusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	if base.Title != "Overridden base" || cfg.Processors != 1024 {
		t.Fatalf("override not applied: %+v", base)
	}
	if _, err := reg.Get("my-experiment"); err != nil {
		t.Fatal(err)
	}
}

// TestParseRejectsUnknownFields covers typo detection at both nesting
// levels of a scenario file.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"name": "x", "titel": "typo"}`)); err == nil {
		t.Error("top-level typo accepted")
	}
	if _, err := Parse(strings.NewReader(`{"name": "x", "config": {"processros": 5}}`)); err == nil {
		t.Error("nested config typo accepted")
	}
}

// TestRegistryValidation covers Add/Get error paths.
func TestRegistryValidation(t *testing.T) {
	reg := New()
	bad := Scenario{Name: "Bad Name", Title: "t", Description: "d"}
	if err := reg.Add(bad); err == nil {
		t.Error("malformed name accepted")
	}
	if err := reg.Add(Scenario{Name: "no-title", Description: "d"}); err == nil {
		t.Error("missing title accepted")
	}
	ok := Scenario{Name: "fine", Title: "t", Description: "d"}
	if err := reg.Add(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("nope"); err == nil || !strings.Contains(err.Error(), "fine") {
		t.Errorf("unknown-name error should list registered names, got: %v", err)
	}
}

// TestLoadDirRejectsInvalid ensures a broken user file fails loudly with
// the file path in the error.
func TestLoadDirRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(path, []byte(`{"name": "broken", "title": "t", "description": "d", "config": {"coordination": "psychic"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Builtin().LoadDir(dir)
	if err == nil {
		t.Fatal("invalid scenario file accepted")
	}
	if !strings.Contains(err.Error(), "broken.json") {
		t.Errorf("error does not name the file: %v", err)
	}
}
