// Package scenario is the declarative registry of named model
// configurations: each scenario bundles a configio file config with the
// metadata needed to pick it from a catalog — title, description,
// citation, tags and optional expected-metric hints. The built-in catalog
// is embedded from the scenarios/ directory, so every variant the
// experiments and CLIs run is data, not code; user-supplied directories
// can add scenarios or override built-ins by name.
package scenario

import (
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/configio"
)

//go:embed scenarios/*.json
var builtinFS embed.FS

// Scenario is one named configuration plus its catalog metadata.
type Scenario struct {
	// Name is the registry key, used with -scenario on the CLIs.
	Name string `json:"name"`
	// Title is a one-line human heading for listings.
	Title string `json:"title"`
	// Description explains what the scenario models and why it exists.
	Description string `json:"description"`
	// Citation points at the paper or report the setup comes from.
	Citation string `json:"citation,omitempty"`
	// Tags group scenarios in listings ("legacy", "figure", "extension"...).
	Tags []string `json:"tags,omitempty"`
	// Expect optionally bounds a headline metric; validate-scenarios
	// checks it on a deterministic smoke replication.
	Expect *Expect `json:"expect,omitempty"`
	// Config is the model configuration in the configio JSON schema
	// (absent fields fall back to the Table 3 defaults).
	Config configio.FileConfig `json:"config"`
}

// Expect bounds the useful-work fraction a deterministic smoke run of the
// scenario should land in. The bounds are sanity rails against config-file
// regressions (a mistyped unit shifts the metric by orders of magnitude),
// not statistical statements.
type Expect struct {
	UsefulFractionMin float64 `json:"usefulFractionMin"`
	UsefulFractionMax float64 `json:"usefulFractionMax"`
}

// ClusterConfig converts the scenario's file config into a validated model
// configuration.
func (s Scenario) ClusterConfig() (cluster.Config, error) {
	c, err := s.Config.ToCluster()
	if err != nil {
		return cluster.Config{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return c, nil
}

// HasTag reports whether the scenario carries the tag.
func (s Scenario) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// validate checks the scenario's metadata and that its config converts.
func (s Scenario) validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario name %q must be lower-case kebab-case", s.Name)
	}
	if s.Title == "" {
		return fmt.Errorf("scenario %q has no title", s.Name)
	}
	if s.Description == "" {
		return fmt.Errorf("scenario %q has no description", s.Name)
	}
	if e := s.Expect; e != nil {
		if e.UsefulFractionMin < 0 || e.UsefulFractionMax > 1 || e.UsefulFractionMin > e.UsefulFractionMax {
			return fmt.Errorf("scenario %q: expect bounds [%v, %v] are not a sub-interval of [0,1]",
				s.Name, e.UsefulFractionMin, e.UsefulFractionMax)
		}
	}
	if _, err := s.ClusterConfig(); err != nil {
		return err
	}
	return nil
}

// Registry maps scenario names to scenarios.
type Registry struct {
	byName map[string]Scenario
}

// New returns an empty registry.
func New() *Registry { return &Registry{byName: map[string]Scenario{}} }

// Builtin returns a fresh registry holding the embedded catalog. The
// embedded files are validated by the package tests, so a failure here is
// a build defect, not an input error — it panics rather than returning an
// error every caller would have to treat as impossible.
func Builtin() *Registry {
	r := New()
	if err := r.loadFS(builtinFS, "scenarios"); err != nil {
		panic(fmt.Sprintf("scenario: embedded catalog corrupt: %v", err))
	}
	return r
}

// Add validates the scenario and inserts it, replacing any existing
// scenario with the same name.
func (r *Registry) Add(s Scenario) error {
	if err := s.validate(); err != nil {
		return err
	}
	r.byName[s.Name] = s
	return nil
}

// Get returns the named scenario. The error for an unknown name lists the
// registered names so a typo on a command line is self-explaining.
func (r *Registry) Get(name string) (Scenario, error) {
	s, ok := r.byName[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the scenarios in name order.
func (r *Registry) All() []Scenario {
	out := make([]Scenario, 0, len(r.byName))
	for _, n := range r.Names() {
		out = append(out, r.byName[n])
	}
	return out
}

// LoadDir reads every *.json file in dir into the registry, overriding
// same-named scenarios already present. Subdirectories are ignored.
func (r *Registry) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		s, err := Parse(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("scenario: %s: %w", path, err)
		}
		if err := r.Add(s); err != nil {
			return fmt.Errorf("scenario: %s: %w", path, err)
		}
	}
	return nil
}

// loadFS reads every *.json below dir in the given filesystem.
func (r *Registry) loadFS(fsys fs.FS, dir string) error {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		f, err := fsys.Open(dir + "/" + e.Name())
		if err != nil {
			return err
		}
		s, err := Parse(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		if want := strings.TrimSuffix(e.Name(), ".json"); s.Name != want {
			return fmt.Errorf("%s: scenario name %q does not match its filename", e.Name(), s.Name)
		}
		if err := r.Add(s); err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
	}
	return nil
}

// WriteList renders the catalog as an aligned text listing for the CLIs'
// -list-scenarios flag: name, tags and title, one scenario per line.
func (r *Registry) WriteList(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, s := range r.All() {
		fmt.Fprintf(tw, "%s\t[%s]\t%s\n", s.Name, strings.Join(s.Tags, ","), s.Title)
	}
	return tw.Flush()
}

// Resolve builds the registry the CLIs share: the built-in catalog,
// extended and overridden by the optional user directory.
func Resolve(dir string) (*Registry, error) {
	reg := Builtin()
	if dir != "" {
		if err := reg.LoadDir(dir); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// Parse decodes one scenario file. Unknown fields — at the top level and
// inside the nested config — are rejected to catch typos, exactly as
// configio.Load does for bare config files.
func Parse(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
