# Convenience targets for the DSN'05 coordinated-checkpointing reproduction.

GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-trend cover ci validate-scenarios sweep-resume-smoke obs-smoke provenance-smoke vr-smoke figures figures-paper report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Data-race tier: vet plus the full suite under the race detector. The
# execution engine (internal/exec) and everything layered on it must pass.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# One benchmark per paper figure plus ablations and micro-benchmarks.
# The scheduler benchmarks (BenchmarkSettle, BenchmarkTrajectory) compare
# the incremental dependency-index path against the full-scan fallback;
# BenchmarkObsOverhead pins the instrumented event loop within 3% of the
# bare one (recorded in REPORT.md); the internal/obs benchmarks measure
# the registry primitives themselves.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -run NONE -bench . -benchmem -count=5 ./internal/des ./internal/san ./internal/model ./internal/obs

# Allocation-economy smoke: the event-pool and instance-recycle benchmarks,
# archived as BENCH_5.json via ccbench. -benchtime=1x was a measurement
# theater — a single iteration times mostly setup and scheduler noise, so
# the archived ns/op could swing 10x between identical commits; 100
# iterations × 3 samples gives compare's median+MAD detector something with
# an actual central tendency, while staying cheap enough for every CI run.
bench-smoke:
	$(GO) test -run NONE -bench 'ScheduleFire$$|RecycleVsRebuild' -benchtime=100x -count=3 -benchmem \
		./internal/des ./internal/model | $(GO) run ./cmd/ccbench -o BENCH_5.json

# Performance-regression sentinel: run the smoke benchmarks, append a
# provenance-stamped report to the local history, render the trend, and
# gate on the last two entries (median + MAD noise band; -warn-only keeps
# local runs informative rather than fatal — CI drops the flag).
bench-trend:
	$(GO) test -run NONE -bench 'ScheduleFire$$|RecycleVsRebuild' -benchtime=100x -count=3 -benchmem \
		./internal/des ./internal/model | $(GO) run ./cmd/ccbench record -history BENCH_HISTORY.jsonl -o BENCH_5.json
	$(GO) run ./cmd/ccbench trend -history BENCH_HISTORY.jsonl
	$(GO) run ./cmd/ccbench compare -history BENCH_HISTORY.jsonl -warn-only

# Coverage profile plus a per-package summary (total line last).
cover:
	$(GO) test -cover -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@echo "per-function detail: $(GO) tool cover -func=coverage.out"
	@echo "HTML report:         $(GO) tool cover -html=coverage.out"

# Scenario-catalog gate: every scenario (built-in catalog plus the
# registry plumbing) must parse, validate, convert to a model
# configuration, and complete a deterministic smoke run inside its
# expected useful-work band, and the registry-built configurations must
# stay bit-identical to the hand-built differential ones.
validate-scenarios:
	$(GO) test -run 'TestBuiltinCatalog|TestSmokeRunEveryScenario' ./internal/scenario
	$(GO) test -run 'TestScenarioRegistryPinsVariants' ./internal/model

# Crash-resume gate for the block-sharded sweep engine (internal/blocks):
# plan a sweep into a run directory, race two real worker processes over
# it, SIGKILL one mid-block, -resume, finish with a fresh worker, -reduce,
# and require the merged journal to be byte-identical (timestamps aside)
# to a monolithic single-process run — across two catalog scenarios.
sweep-resume-smoke:
	$(GO) test -count=1 -run 'TestCrashResumeBitIdentical' -v ./cmd/ccsweep
	$(GO) test -run 'TestWorkersBitIdentical|TestTornJournalIsIncompleteNotFatal' ./internal/blocks

# Fleet-telemetry gate: two real worker processes run a planned sweep with
# fast heartbeats, one is SIGKILLed mid-block, and the run directory's
# telemetry must tell the story — victim flagged dead by heartbeat age
# with its flight-recorder postmortem intact, survivor's final snapshot
# says "done", -fleet/-timeline emit valid JSON (Perfetto-loadable, one
# track per worker, a span per committed block), and the merged fleet
# registry renders as parseable Prometheus text exposition. Plus the
# in-process gates: snapshot-merge property, Scan state partition,
# /metricz.prom endpoint.
obs-smoke:
	$(GO) test -count=1 -run 'TestFleetTelemetryEndToEnd' -v ./cmd/ccsweep
	$(GO) test -run 'TestMergeSnapshots|TestWriteProm|TestDebugServerPromEndpoint|TestFlightRecorder' ./internal/obs
	$(GO) test -run 'TestScanStateSingleValued|TestWorkWritesHeartbeats|TestCollectFleet|TestWriteTimeline' ./internal/blocks

# Provenance-and-profiles gate: two real worker processes run a planned
# sweep and the run directory must identify what produced it — heartbeats
# stamped with binary provenance and the manifest hash, a doctored stamp
# flagged as a mixed-binary fleet with the minority worker marked, and an
# armed ProfileCapture leaving parseable pprof files. Plus the in-process
# gates: fleet majority vote, Work-loop stamping, and the ccbench sentinel
# end-to-end (bench → record → doctored regression → compare exits 1).
provenance-smoke:
	$(GO) test -count=1 -run 'TestProvenanceAndProfilesEndToEnd' -v ./cmd/ccsweep
	$(GO) test -run 'TestCollectFleetProvenanceMismatch|TestWorkStampsProvenance' ./internal/blocks
	$(GO) test -count=1 -run 'TestSentinelEndToEnd' ./cmd/ccbench

# Variance-reduction gate (DESIGN.md §19): a seeded ~30-second paired-vs-
# plain convergence comparison on the base scenario. The hard gate is the
# engine's measured variance-reduction factor — the CRN pairing's CI
# shrink (Var A + Var B)/Var(A−B) on a small design change — at 2×, plus
# "antithetic must help, never hurt" (antithetic's theoretical ceiling on
# exponential-noise steady-state estimates is 1/(π²/6−1) ≈ 2.8×, too close
# to 2× to gate robustly on its own). The same measurement in benchmark
# form is archived into BENCH_HISTORY.jsonl so the sentinel watches
# statistical efficiency — replications_to_halfwidth, lower is better —
# alongside events/s. Everything is seeded: a gate flip means the pairing
# machinery changed, not an unlucky run.
vr-smoke:
	$(GO) test -count=1 -run 'TestVRSmokeGate' -v .
	$(GO) test -run NONE -bench 'VRSmoke$$' -benchtime=1x . | $(GO) run ./cmd/ccbench record -history BENCH_HISTORY.jsonl -o BENCH_VR.json
	$(GO) run ./cmd/ccbench compare -history BENCH_HISTORY.jsonl -metric replications_to_halfwidth -warn-only

# Everything the GitHub Actions workflow runs (.github/workflows/ci.yml),
# locally: the tier-1 suite, the race tier, the coverage profile, the
# scenario-catalog gate, the sweep crash-resume gate, the fleet telemetry
# gate, the provenance/sentinel gate, and the variance-reduction gate.
ci: all race cover validate-scenarios sweep-resume-smoke obs-smoke provenance-smoke vr-smoke

# Regenerate every paper figure (quick scale) into results/.
figures:
	$(GO) run ./cmd/ccfigures -extras -out results/

# Paper-scale windows (5 reps × 1000h warmup × 4000h measured) — slow.
figures-paper:
	$(GO) run ./cmd/ccfigures -paper -extras -out results-paper/

# Self-verifying claim report.
report:
	$(GO) run ./cmd/ccreport -o REPORT.md

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacity
	$(GO) run ./examples/interval
	$(GO) run ./examples/correlated
	$(GO) run ./examples/protocol
	$(GO) run ./examples/validate
	$(GO) run ./examples/jobplanner

clean:
	rm -rf results results-paper coverage.out
