# Convenience targets for the DSN'05 coordinated-checkpointing reproduction.

GO ?= go

.PHONY: all build test vet race bench bench-smoke cover ci validate-scenarios sweep-resume-smoke obs-smoke figures figures-paper report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Data-race tier: vet plus the full suite under the race detector. The
# execution engine (internal/exec) and everything layered on it must pass.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# One benchmark per paper figure plus ablations and micro-benchmarks.
# The scheduler benchmarks (BenchmarkSettle, BenchmarkTrajectory) compare
# the incremental dependency-index path against the full-scan fallback;
# BenchmarkObsOverhead pins the instrumented event loop within 3% of the
# bare one (recorded in REPORT.md); the internal/obs benchmarks measure
# the registry primitives themselves.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -run NONE -bench . -benchmem -count=5 ./internal/des ./internal/san ./internal/model ./internal/obs

# Allocation-economy smoke: one iteration of the event-pool and
# instance-recycle benchmarks, archived as BENCH_5.json via ccbench. Cheap
# enough for every CI run; the JSON is the artifact regressions are diffed
# against.
bench-smoke:
	$(GO) test -run NONE -bench 'ScheduleFire$$|RecycleVsRebuild' -benchtime=1x -benchmem \
		./internal/des ./internal/model | $(GO) run ./cmd/ccbench -o BENCH_5.json

# Coverage profile plus a per-package summary (total line last).
cover:
	$(GO) test -cover -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@echo "per-function detail: $(GO) tool cover -func=coverage.out"
	@echo "HTML report:         $(GO) tool cover -html=coverage.out"

# Scenario-catalog gate: every scenario (built-in catalog plus the
# registry plumbing) must parse, validate, convert to a model
# configuration, and complete a deterministic smoke run inside its
# expected useful-work band, and the registry-built configurations must
# stay bit-identical to the hand-built differential ones.
validate-scenarios:
	$(GO) test -run 'TestBuiltinCatalog|TestSmokeRunEveryScenario' ./internal/scenario
	$(GO) test -run 'TestScenarioRegistryPinsVariants' ./internal/model

# Crash-resume gate for the block-sharded sweep engine (internal/blocks):
# plan a sweep into a run directory, race two real worker processes over
# it, SIGKILL one mid-block, -resume, finish with a fresh worker, -reduce,
# and require the merged journal to be byte-identical (timestamps aside)
# to a monolithic single-process run — across two catalog scenarios.
sweep-resume-smoke:
	$(GO) test -count=1 -run 'TestCrashResumeBitIdentical' -v ./cmd/ccsweep
	$(GO) test -run 'TestWorkersBitIdentical|TestTornJournalIsIncompleteNotFatal' ./internal/blocks

# Fleet-telemetry gate: two real worker processes run a planned sweep with
# fast heartbeats, one is SIGKILLed mid-block, and the run directory's
# telemetry must tell the story — victim flagged dead by heartbeat age
# with its flight-recorder postmortem intact, survivor's final snapshot
# says "done", -fleet/-timeline emit valid JSON (Perfetto-loadable, one
# track per worker, a span per committed block), and the merged fleet
# registry renders as parseable Prometheus text exposition. Plus the
# in-process gates: snapshot-merge property, Scan state partition,
# /metricz.prom endpoint.
obs-smoke:
	$(GO) test -count=1 -run 'TestFleetTelemetryEndToEnd' -v ./cmd/ccsweep
	$(GO) test -run 'TestMergeSnapshots|TestWriteProm|TestDebugServerPromEndpoint|TestFlightRecorder' ./internal/obs
	$(GO) test -run 'TestScanStateSingleValued|TestWorkWritesHeartbeats|TestCollectFleet|TestWriteTimeline' ./internal/blocks

# Everything the GitHub Actions workflow runs (.github/workflows/ci.yml),
# locally: the tier-1 suite, the race tier, the coverage profile, the
# scenario-catalog gate, the sweep crash-resume gate, and the fleet
# telemetry gate.
ci: all race cover validate-scenarios sweep-resume-smoke obs-smoke

# Regenerate every paper figure (quick scale) into results/.
figures:
	$(GO) run ./cmd/ccfigures -extras -out results/

# Paper-scale windows (5 reps × 1000h warmup × 4000h measured) — slow.
figures-paper:
	$(GO) run ./cmd/ccfigures -paper -extras -out results-paper/

# Self-verifying claim report.
report:
	$(GO) run ./cmd/ccreport -o REPORT.md

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacity
	$(GO) run ./examples/interval
	$(GO) run ./examples/correlated
	$(GO) run ./examples/protocol
	$(GO) run ./examples/validate
	$(GO) run ./examples/jobplanner

clean:
	rm -rf results results-paper coverage.out
