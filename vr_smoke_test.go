package repro_test

// The variance-reduction smoke (`make vr-smoke`): a ~30-second paired-vs-
// plain convergence comparison on the base scenario, gated at a measured
// variance-reduction factor of 2× and recorded into BENCH_HISTORY.jsonl via
// `ccbench record` so the performance sentinel watches statistical
// efficiency alongside events/s.
//
// The gated factor is the engine's strongest pairing — common random
// numbers on per-purpose sub-streams, the mechanism behind Compare —
// measured as the CI-shrink factor (Var A + Var B) / Var(A−B) on a small
// design change to the base scenario. Antithetic pairing is measured and
// recorded alongside but gated only at >1 (it must help, never hurt): its
// theoretical ceiling on exponential-noise steady-state estimates is
// 1/(π²/6 − 1) ≈ 2.8×, too close to 2× to gate robustly.
//
// Everything here is seeded, so the measured numbers are deterministic:
// a gate failure means the pairing machinery changed, not an unlucky run.

import (
	"testing"

	"repro"
	"repro/internal/stats"
	"repro/internal/vr"
)

// vrSmoke holds the measured efficiency of one smoke run.
type vrSmoke struct {
	// shrink is the CRN CI-shrink factor (Var A + Var B) / Var(A−B).
	shrink float64
	// pairedReps is how many paired replications reach the half-width the
	// independent design needs the full budget for; speedup is the ratio.
	pairedReps int
	speedup    float64
	// antitheticFactor is the measured antithetic VR factor on the base
	// scenario's useful-work fraction.
	antitheticFactor float64
}

const vrSmokeReps = 12

// runVRSmoke measures the paired and plain convergence on the base
// scenario: config B is a one-knob design change (20% longer checkpoint
// interval) — exactly the comparison Compare exists for.
func runVRSmoke(tb testing.TB) vrSmoke {
	tb.Helper()
	a := repro.DefaultConfig()
	b := a
	b.CheckpointInterval = repro.Minutes(36)

	o := repro.Options{Replications: vrSmokeReps, Warmup: 300, Measure: 1500, Seed: 1, SyncReport: true}
	comp, err := repro.CompareConfigs(a, b, o)
	if err != nil {
		tb.Fatal(err)
	}
	paired := make([]float64, vrSmokeReps)
	for r := range paired {
		paired[r] = comp.B.PerReplication[r].UsefulWorkFraction - comp.A.PerReplication[r].UsefulWorkFraction
	}

	// The plain design: the same budget spent on independently seeded
	// estimates of each side.
	oa := repro.Options{Replications: vrSmokeReps, Warmup: 300, Measure: 1500, Seed: 101}
	ob := oa
	ob.Seed = 202
	ra, err := repro.Simulate(a, oa)
	if err != nil {
		tb.Fatal(err)
	}
	rb, err := repro.Simulate(b, ob)
	if err != nil {
		tb.Fatal(err)
	}
	var indep stats.Accumulator
	for r := 0; r < vrSmokeReps; r++ {
		indep.Add(rb.PerReplication[r].UsefulWorkFraction - ra.PerReplication[r].UsefulWorkFraction)
	}
	target := indep.CI(0.95).HalfWide

	s := vrSmoke{shrink: comp.Sync.CIShrinkFactor}
	s.pairedReps = stats.ReplicationsToHalfWidth(paired, 0.95, target)
	if s.pairedReps > 0 {
		s.speedup = float64(vrSmokeReps) / float64(s.pairedReps)
	}

	av := repro.Options{Replications: 32, Warmup: 300, Measure: 1500, Seed: 3,
		VarianceReduction: vr.ModeAntithetic}
	ar, err := repro.Simulate(a, av)
	if err != nil {
		tb.Fatal(err)
	}
	s.antitheticFactor = ar.VR.Factor
	return s
}

// TestVRSmokeGate is the hard gate behind `make vr-smoke`.
func TestVRSmokeGate(t *testing.T) {
	s := runVRSmoke(t)
	t.Logf("CRN shrink ×%.2f | paired reps to plain half-width %d/%d (%.1fx) | antithetic factor %.2f",
		s.shrink, s.pairedReps, vrSmokeReps, s.speedup, s.antitheticFactor)
	if s.shrink < 2 {
		t.Errorf("measured variance-reduction factor ×%.2f below the 2× gate", s.shrink)
	}
	if s.pairedReps < 0 {
		t.Error("paired design never reached the plain design's half-width")
	} else if s.speedup < 2 {
		t.Errorf("paired design needed %d of %d replications (%.1fx) — below the 2× gate",
			s.pairedReps, vrSmokeReps, s.speedup)
	}
	if s.antitheticFactor <= 1 {
		t.Errorf("antithetic factor %.2f — pairing must not hurt", s.antitheticFactor)
	}
}

// BenchmarkVRSmoke reports the smoke's efficiency metrics in benchmark
// form so `ccbench record` archives them: replications_to_halfwidth is
// lower-better (ccbench's default for unit-less metrics), vr_factor and
// antithetic_factor ride along for the trend view.
func BenchmarkVRSmoke(b *testing.B) {
	var s vrSmoke
	for i := 0; i < b.N; i++ {
		s = runVRSmoke(b)
	}
	b.ReportMetric(float64(s.pairedReps), "replications_to_halfwidth")
	b.ReportMetric(s.shrink, "vr_factor")
	b.ReportMetric(s.antitheticFactor, "antithetic_factor")
}
