package repro_test

import (
	"fmt"

	"repro"
)

// ExampleYoungInterval computes Young's optimum checkpoint interval for
// the paper's base system: ~8K nodes at MTTF 1 year give a system MTBF of
// about 1.07 h, and with ~57 s of checkpoint overhead the optimum interval
// is far below the paper's 15-minute practicality floor.
func ExampleYoungInterval() {
	cfg := repro.DefaultConfig()
	systemMTBF := cfg.MTTFPerNode / float64(cfg.Nodes())
	overhead := cfg.MTTQ + cfg.CheckpointDumpTime()
	tau, err := repro.YoungInterval(overhead, systemMTBF)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Young optimum: %.1f minutes\n", tau*60)
	// Output:
	// Young optimum: 11.0 minutes
}

// ExampleExpectedCoordinationTime shows the logarithmic coordination law of
// Section 5: quadrupling the machine adds a constant ~13.9 s (MTTQ·ln 4).
func ExampleExpectedCoordinationTime() {
	mttq := repro.Seconds(10)
	for _, n := range []int{16384, 65536, 262144} {
		fmt.Printf("n=%6d: %.1f s\n", n, repro.ExpectedCoordinationTime(n, mttq)*3600)
	}
	// Output:
	// n= 16384: 102.8 s
	// n= 65536: 116.7 s
	// n=262144: 130.5 s
}

// ExampleCoordinationAbortProbability shows the probabilistic
// checkpoint-abort behaviour of the master timeout (Section 7.2): a 60 s
// timeout almost always aborts at 64K processors, 180 s almost never does.
func ExampleCoordinationAbortProbability() {
	mttq := repro.Seconds(10)
	for _, sec := range []float64{60, 120, 180} {
		p := repro.CoordinationAbortProbability(65536, mttq, repro.Seconds(sec))
		fmt.Printf("timeout %3.0fs: abort probability %.3f\n", sec, p)
	}
	// Output:
	// timeout  60s: abort probability 1.000
	// timeout 120s: abort probability 0.331
	// timeout 180s: abort probability 0.001
}

// ExampleValidate shows configuration validation catching a cross-field
// mistake.
func ExampleValidate() {
	cfg := repro.DefaultConfig()
	cfg.ProbCorrelated = 0.1 // forgot CorrelatedFactor
	fmt.Println(repro.Validate(cfg))
	// Output:
	// repro: cluster: ProbCorrelated set but CorrelatedFactor is not positive
}
