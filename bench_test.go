// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 7). Each BenchmarkFigNx regenerates the corresponding
// figure at a reduced-but-faithful scale (the full paper scale is
// cmd/ccfigures -paper) and reports the figure's headline shape metric so
// regressions in the reproduced science surface as metric changes:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/cluster"
	"repro/internal/cyclesim"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/runner"
)

// benchOpts keeps every figure benchmark in the seconds range while
// preserving the shapes (hundreds of failures per cell at paper scale).
func benchOpts() runner.Options {
	return runner.Options{Replications: 2, Warmup: 100, Measure: 600, Seed: 12345}
}

// runFigure executes one experiment per iteration and returns the last
// result for metric extraction.
func runFigure(b *testing.B, id string) *experiments.Figure {
	b.Helper()
	def, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, err = def.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// optimumX reports the x value at which the named series peaks.
func optimumX(b *testing.B, fig *experiments.Figure, series string) float64 {
	b.Helper()
	x, _, ok := fig.ArgMax(fig.SeriesByName(series))
	if !ok {
		b.Fatalf("series %q missing or empty", series)
	}
	return x
}

// BenchmarkFig4a — total useful work vs processors per MTTF. Shape: the
// MTTF=1yr optimum sits at an interior processor count (paper: 128K).
func BenchmarkFig4a(b *testing.B) {
	fig := runFigure(b, "fig4a")
	b.ReportMetric(optimumX(b, fig, "MTTF=1yr"), "opt-procs@1yr")
	b.ReportMetric(optimumX(b, fig, "MTTF=0.5yr"), "opt-procs@0.5yr")
}

// BenchmarkFig4b — useful work vs interval per processor count. Shape: no
// interior optimum; 15 min is best for every machine size.
func BenchmarkFig4b(b *testing.B) {
	fig := runFigure(b, "fig4b")
	b.ReportMetric(optimumX(b, fig, "procs=65536"), "opt-interval-min@64K")
	b.ReportMetric(optimumX(b, fig, "procs=262144"), "opt-interval-min@256K")
}

// BenchmarkFig4c — useful work vs processors per MTTR. Shape: optimum
// machine size shrinks as MTTR grows (paper: 128K@20min → 64K@40min).
func BenchmarkFig4c(b *testing.B) {
	fig := runFigure(b, "fig4c")
	b.ReportMetric(optimumX(b, fig, "MTTR=20min"), "opt-procs@20min")
	b.ReportMetric(optimumX(b, fig, "MTTR=80min"), "opt-procs@80min")
}

// BenchmarkFig4d — useful work vs interval per MTTR at 64K processors.
func BenchmarkFig4d(b *testing.B) {
	fig := runFigure(b, "fig4d")
	b.ReportMetric(optimumX(b, fig, "MTTR=10min"), "opt-interval-min@10min")
}

// BenchmarkFig4e — useful work vs processors per checkpoint interval.
// Shape: optimum machine size shrinks as the interval grows.
func BenchmarkFig4e(b *testing.B) {
	fig := runFigure(b, "fig4e")
	b.ReportMetric(optimumX(b, fig, "interval=30min"), "opt-procs@30min")
	b.ReportMetric(optimumX(b, fig, "interval=240min"), "opt-procs@240min")
}

// BenchmarkFig4f — useful work vs interval per MTTF at 64K processors.
// Shape metric: the relative drop from 15→30 min (paper: small) and
// 30→60 min (paper: sharp) for MTTF=8yr.
func BenchmarkFig4f(b *testing.B) {
	fig := runFigure(b, "fig4f")
	s := fig.SeriesByName("MTTF=8yr")
	if s == nil || len(s.Points) < 3 {
		b.Fatal("MTTF=8yr series missing")
	}
	drop1530 := 1 - s.Points[1].Total.Mean/s.Points[0].Total.Mean
	drop3060 := 1 - s.Points[2].Total.Mean/s.Points[1].Total.Mean
	b.ReportMetric(drop1530*100, "drop-15to30-%")
	b.ReportMetric(drop3060*100, "drop-30to60-%")
}

// BenchmarkFig4g — useful work vs nodes at 32 processors/node.
func BenchmarkFig4g(b *testing.B) {
	fig := runFigure(b, "fig4g")
	_, peak, ok := fig.ArgMax(fig.SeriesByName("MTTF=1yr"))
	if !ok {
		b.Fatal("MTTF=1yr series missing")
	}
	b.ReportMetric(peak, "peak-total@32pn")
}

// BenchmarkFig4h — useful work vs nodes at 16 processors/node.
func BenchmarkFig4h(b *testing.B) {
	fig := runFigure(b, "fig4h")
	_, peak, ok := fig.ArgMax(fig.SeriesByName("MTTF=1yr"))
	if !ok {
		b.Fatal("MTTF=1yr series missing")
	}
	b.ReportMetric(peak, "peak-total@16pn")
}

// BenchmarkFig5 — coordination-only fraction vs processors. Shape: the
// drop from n=1 to n=2^30 at MTTQ=10s is logarithmic-scale (paper: ~0.97 →
// ~0.81).
func BenchmarkFig5(b *testing.B) {
	fig := runFigure(b, "fig5")
	s := fig.SeriesByName("MTTQ=10s")
	if s == nil || len(s.Points) < 2 {
		b.Fatal("MTTQ=10s series missing")
	}
	first := s.Points[0].Fraction.Mean
	last := s.Points[len(s.Points)-1].Fraction.Mean
	b.ReportMetric(first, "fraction@n=1")
	b.ReportMetric(last, "fraction@n=2^30")
}

// BenchmarkFig6 — coordination+timeout with failures. Shape: timeout=20s
// collapses the fraction at 64K processors, timeout=120s does not.
func BenchmarkFig6(b *testing.B) {
	fig := runFigure(b, "fig6")
	f20 := seriesValueAt(b, fig, "timeout=20s", 65536)
	f120 := seriesValueAt(b, fig, "timeout=120s", 65536)
	none := seriesValueAt(b, fig, "no timeout", 65536)
	b.ReportMetric(f20, "fraction@64K-t20s")
	b.ReportMetric(f120, "fraction@64K-t120s")
	b.ReportMetric(none, "fraction@64K-noT")
}

// BenchmarkFig7 — error-propagation correlated failures. Shape: the spread
// of the fraction across all pe and r is small (paper: 0.51–0.56).
func BenchmarkFig7(b *testing.B) {
	fig := runFigure(b, "fig7")
	lo, hi := 1.0, 0.0
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Fraction.Mean < lo {
				lo = p.Fraction.Mean
			}
			if p.Fraction.Mean > hi {
				hi = p.Fraction.Mean
			}
		}
	}
	b.ReportMetric(hi-lo, "fraction-spread")
}

// BenchmarkFig8 — generic correlated failures. Shape: the fraction drop at
// 256K processors (paper: −0.24).
func BenchmarkFig8(b *testing.B) {
	fig := runFigure(b, "fig8")
	without := seriesValueAt(b, fig, "without correlated failure", 262144)
	with := seriesValueAt(b, fig, "with correlated failure", 262144)
	b.ReportMetric(without-with, "fraction-drop@256K")
}

func seriesValueAt(b *testing.B, fig *experiments.Figure, series string, x float64) float64 {
	b.Helper()
	s := fig.SeriesByName(series)
	if s == nil {
		b.Fatalf("series %q missing", series)
	}
	for _, p := range s.Points {
		if p.X == x {
			return p.Fraction.Mean
		}
	}
	b.Fatalf("series %q has no point at x=%v", series, x)
	return 0
}

// ---- ablation benchmarks (design choices DESIGN.md calls out) ----

// BenchmarkAblationBackgroundWrite quantifies the two-step background I/O
// of Section 3.1 (paper footnote 1): the reported metric is the useful-work
// fraction lost when checkpoint FS writes block computation.
func BenchmarkAblationBackgroundWrite(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		bg := cluster.Default()
		blocking := bg
		blocking.BlockingCheckpointWrite = true
		mBG := trajectoryFraction(b, bg, 777)
		mBL := trajectoryFraction(b, blocking, 777)
		gap = mBG - mBL
	}
	b.ReportMetric(gap, "fraction-cost-of-blocking")
}

// BenchmarkAblationBufferedRecovery quantifies I/O-node checkpoint
// buffering (stage-1 skip plus smaller rollbacks): the metric is the
// useful-work fraction lost when recovery must always use the file system.
func BenchmarkAblationBufferedRecovery(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		with := cluster.Default()
		without := with
		without.NoBufferedRecovery = true
		mWith := trajectoryFraction(b, with, 778)
		mWithout := trajectoryFraction(b, without, 778)
		gap = mWith - mWithout
	}
	b.ReportMetric(gap, "fraction-cost-of-no-buffer")
}

// BenchmarkAblationCorrWindowFactor quantifies the error-propagation window
// mechanism at Figure 7's heaviest setting (pe=0.2, r=1600) against the
// independent-failure baseline.
func BenchmarkAblationCorrWindowFactor(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		base := cluster.Default()
		base.MTTFPerNode = cluster.Years(3)
		corr := base
		corr.ProbCorrelated = 0.2
		corr.CorrelatedFactor = 1600
		mBase := trajectoryFraction(b, base, 779)
		mCorr := trajectoryFraction(b, corr, 779)
		gap = mBase - mCorr
	}
	b.ReportMetric(gap, "fraction-cost-of-bursts")
}

func trajectoryFraction(b *testing.B, cfg cluster.Config, seed uint64) float64 {
	b.Helper()
	in, err := model.New(cfg, seed)
	if err != nil {
		b.Fatal(err)
	}
	m, err := in.RunSteadyState(200, 2000)
	if err != nil {
		b.Fatal(err)
	}
	return m.UsefulWorkFraction
}

// BenchmarkEstimateParallel compares the worker-pool execution engine at one
// worker (exact historic behavior) against one worker per core, on the
// Figure-4a base configuration. Replications fan across workers, so the
// expected speedup approaches min(workers, replications) on a multi-core
// machine; results are bit-identical at any worker count.
func BenchmarkEstimateParallel(b *testing.B) {
	cfg := cluster.Default()
	cfg.Coordination = cluster.CoordFixed
	cfg.Timeout = 0
	opts := runner.Options{Replications: 5, Warmup: 100, Measure: 600, Seed: 12345}
	for _, workers := range []int{1, runtime.NumCPU()} {
		opts := opts
		opts.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runner.Estimate(cfg, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- micro-benchmarks of the substrates ----

// BenchmarkModelTrajectory measures raw simulation speed of the composed
// SAN at the paper's base configuration (events/op via b.ReportMetric).
func BenchmarkModelTrajectory(b *testing.B) {
	cfg := cluster.Default()
	for i := 0; i < b.N; i++ {
		in, err := model.New(cfg, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.RunSteadyState(0, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinationSample measures the max-of-n inversion sampling used
// by the coordination activity (n = 2^20).
func BenchmarkCoordinationSample(b *testing.B) {
	d := rng.MaxOfNExponentials{N: 1 << 20, PerNodeMean: cluster.Seconds(10)}
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = d.Sample(src)
	}
}

// BenchmarkProtocolRound measures one message-level checkpoint round over
// 4096 nodes (three scheduled events per node).
func BenchmarkProtocolRound(b *testing.B) {
	cfg := cluster.Default()
	cfg.Processors = 4096 * 8
	sim, err := protocol.New(cfg, 64, cluster.Seconds(0.001), 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.Round()
	}
}

// BenchmarkSimulatePublicAPI exercises the public entry point end to end.
func BenchmarkSimulatePublicAPI(b *testing.B) {
	cfg := repro.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Simulate(cfg, repro.Options{
			Replications: 1, Warmup: 50, Measure: 300, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycleEngineTrajectory measures the independent renewal-cycle
// engine on the base configuration (same workload as
// BenchmarkModelTrajectory, for an engine-to-engine speed comparison).
func BenchmarkCycleEngineTrajectory(b *testing.B) {
	cfg := cluster.Default()
	cfg.ComputeFraction = 1
	cfg.NoIOFailures = true
	for i := 0; i < b.N; i++ {
		s, err := cyclesim.New(cfg, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunSteadyState(0, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
