package repro

import (
	"math"
	"strings"
	"testing"
)

func TestCompareConfigsPublicAPI(t *testing.T) {
	a := DefaultConfig()
	b := a
	b.NoBufferedRecovery = true
	c, err := CompareConfigs(a, b, Options{Replications: 6, Warmup: 100, Measure: 1000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if c.FractionDiff.Mean >= 0 {
		t.Fatalf("removing buffered recovery should hurt: %v", c.FractionDiff)
	}
	if !c.Significant() {
		t.Fatalf("buffered-recovery effect unresolved with CRN pairing: %v", c.FractionDiff)
	}
}

func TestOptimalProcessorsPublicAPI(t *testing.T) {
	res, err := OptimalProcessors(DefaultConfig(), []int{32768, 131072, 1 << 21},
		Options{Replications: 2, Warmup: 100, Measure: 800, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.X != 131072 {
		t.Fatalf("optimum = %v, want 131072", res.Best.X)
	}
}

func TestOptimalIntervalPublicAPI(t *testing.T) {
	res, err := OptimalInterval(DefaultConfig(), []float64{Minutes(15), Minutes(240)},
		Options{Replications: 2, Warmup: 50, Measure: 500, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.X != Minutes(15) {
		t.Fatalf("optimum interval = %v, want 15 min", res.Best.X)
	}
}

func TestOptimalTimeoutPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Coordination = CoordMaxOfN
	cfg.MTTFPerNode = Years(3)
	res, err := OptimalTimeout(cfg, []float64{Seconds(20), 0},
		Options{Replications: 2, Warmup: 50, Measure: 500, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.X != 0 {
		t.Fatalf("optimum timeout = %v, want none", res.Best.X)
	}
}

func TestBreakdownExposed(t *testing.T) {
	m, err := Trajectory(DefaultConfig(), 35, 100, 800)
	if err != nil {
		t.Fatal(err)
	}
	var b TimeBreakdown = m.Breakdown
	if math.Abs(b.Sum()-1) > 1e-9 {
		t.Fatalf("breakdown sums to %v", b.Sum())
	}
	if b.Recovery <= 0 {
		t.Fatal("no recovery time at MTTF 1yr")
	}
	if m.RepeatedWorkFraction <= 0 {
		t.Fatal("no repeated work at MTTF 1yr")
	}
}

func TestPermanentFailureExtensionExposed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbPermanentFailure = 0.3
	cfg.ReconfigurationTime = Minutes(20)
	m, err := Trajectory(cfg, 36, 100, 800)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.PermanentFailures == 0 {
		t.Fatal("permanent failures not surfaced through the public API")
	}
}

func TestTrajectoryCyclePublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeFraction = 1
	cfg.NoIOFailures = true
	san, err := Trajectory(cfg, 40, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := TrajectoryCycle(cfg, 41, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(san.UsefulWorkFraction-cyc.UsefulWorkFraction) > 0.05 {
		t.Fatalf("engines disagree: %v vs %v", san.UsefulWorkFraction, cyc.UsefulWorkFraction)
	}
	if _, err := TrajectoryCycle(DefaultConfig(), 1, 10, 10); err == nil {
		t.Fatal("out-of-envelope config accepted by cycle engine")
	}
}

func TestConfigIOPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Processors = 32768
	var buf strings.Builder
	if err := SaveConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfig(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Processors != 32768 {
		t.Fatalf("round trip lost processors: %d", back.Processors)
	}
}

func TestCoordinationEfficiencyForPublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Coordination = CoordMaxOfN
	mtbf := cfg.MTTFPerNode / float64(cfg.Nodes())
	eff, p, err := CoordinationEfficiencyFor(cfg, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 || eff >= 1 || p != 0 {
		t.Fatalf("eff=%v p=%v", eff, p)
	}
	cfg.Timeout = Seconds(20)
	_, p, err = CoordinationEfficiencyFor(cfg, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Fatalf("suicidal timeout abort prob = %v", p)
	}
}

func TestJobCompletionTimePublicAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeFraction = 1
	cfg.NoIOFailures = true
	comp, err := JobCompletionTime(cfg, 100, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Fraction ≈ 0.65 ⇒ stretch ≈ 1.5.
	if st := comp.Stretch(); st < 1.2 || st > 2.2 {
		t.Fatalf("stretch = %v", st)
	}
	if _, err := JobCompletionTime(DefaultConfig(), 100, 2, 1); err == nil {
		t.Fatal("out-of-envelope config accepted")
	}
}

func TestSensitivityPublicAPI(t *testing.T) {
	a, err := Sensitivity(DefaultConfig(), 1.5, Options{Replications: 2, Warmup: 50, Measure: 400, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.MostSensitive() == "" || len(a.Effects) == 0 {
		t.Fatalf("empty analysis: %+v", a)
	}
	if _, err := Sensitivity(DefaultConfig(), 1.0, Options{}); err == nil {
		t.Fatal("factor 1 accepted")
	}
}
