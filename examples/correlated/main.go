// Correlated failures: reproduces the contrast between Figures 7 and 8 of
// the paper. Error-propagation bursts (which strike during recovery) barely
// move the useful-work fraction, while generic correlated failures — which
// merely double the effective failure rate — cripple scalability.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	base := repro.DefaultConfig()
	base.Processors = 128 * 1024
	base.MTTFPerNode = repro.Years(3) // the paper's choice for §7.2–7.3

	opts := repro.Options{Replications: 3, Warmup: 300, Measure: 1500, Seed: 7}

	indep := simulate("independent failures only", base, opts)

	prop := base
	prop.ProbCorrelated = 0.2 // every 5th failure starts an error burst
	prop.CorrelatedFactor = 800
	propFrac := simulate("error-propagation bursts (pe=0.2, r=800)", prop, opts)

	gen := base
	gen.CorrelatedFactor = 400
	gen.GenericCorrelatedCoefficient = 0.0025 // doubles the failure rate
	genFrac := simulate("generic correlated failures (r=400, alpha=0.0025)", gen, opts)

	fmt.Println()
	fmt.Printf("error propagation moved the fraction by %+.3f\n", propFrac-indep)
	fmt.Printf("generic correlation moved the fraction by %+.3f\n", genFrac-indep)
	fmt.Println("\nthe paper's conclusion: correlated failures that raise the base")
	fmt.Println("failure rate must be modeled — they dominate the scalability limit;")
	fmt.Println("bursts confined to recovery windows are comparatively harmless.")
}

func simulate(label string, cfg repro.Config, opts repro.Options) float64 {
	res, err := repro.Simulate(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-50s %v\n", label, res.UsefulWorkFraction)
	return res.UsefulWorkFraction.Mean
}
