// Job planning: the operator's view of the paper's results. Given a job
// that needs 5000 hours of useful work, how long will it actually take on
// this machine (completion-time distribution), and which parameter is the
// binding constraint (sensitivity analysis)?
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig() // 64K procs, MTTF 1 yr/node
	cfg.ComputeFraction = 1      // cycle-engine envelope
	cfg.NoIOFailures = true

	const work = 5000.0 // hours of useful work the job needs
	comp, err := repro.JobCompletionTime(cfg, work, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job size: %.0f h of useful work on %d processors\n", work, cfg.Processors)
	fmt.Printf("expected completion: %v h (stretch %.2fx)\n", comp.Mean, comp.Stretch())
	fmt.Printf("completion spread:   p10 %.0f h | median %.0f h | p90 %.0f h\n",
		comp.Quantile(0.1), comp.Quantile(0.5), comp.Quantile(0.9))

	fmt.Println("\nwhich knob matters most? (+50% on each parameter, paired runs)")
	sens, err := repro.Sensitivity(repro.DefaultConfig(), 1.5, repro.Options{
		Replications: 3, Warmup: 100, Measure: 800, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base useful-work fraction: %.3f\n", sens.BaseFraction.Mean)
	for _, e := range sens.Effects {
		fmt.Printf("  %-16s elasticity %+.3f   (Δfraction %+.4f)\n",
			e.Parameter, e.Elasticity, e.FractionDiff.Mean)
	}
	fmt.Printf("\nbinding constraint: %s — exactly the paper's conclusion that the\n", sens.MostSensitive())
	fmt.Println("overall failure rate, not the checkpointing cost, limits these machines.")
}
