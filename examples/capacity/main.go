// Capacity planning: the paper's headline result (§7.1) is that for a given
// MTTF, MTTR and checkpoint interval there is an optimum number of
// processors beyond which adding hardware *reduces* the work the machine
// completes. This example sweeps the machine size like Figure 4a using the
// confidence-interval-aware optimizer and reports where the knee sits and
// where the lost time goes.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig() // MTTF 1 yr/node, MTTR 10 min, interval 30 min

	candidates := []int{8192, 16384, 32768, 65536, 131072, 262144}
	res, err := repro.OptimalProcessors(cfg, candidates, repro.Options{
		Replications: 3, Warmup: 300, Measure: 1500, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("procs     useful-fraction  total-useful-work")
	for _, p := range res.Points {
		fmt.Printf("%-9.0f %-16.4f %v\n", p.X, p.Fraction.Mean, p.Total)
	}
	fmt.Printf("\noptimum machine size: %.0f processors (%.0f job units", res.Best.X, res.Best.Total.Mean)
	if res.Distinct {
		fmt.Println(", statistically distinct from the runner-up)")
	} else {
		fmt.Println("; the knee is flat — the runner-up is within its confidence interval)")
	}

	// Where does the time go at the optimum? (§7.1: "over 50% of system
	// time is spent in handling failures" at the peak.)
	best := cfg
	best.Processors = int(res.Best.X)
	m, err := repro.Trajectory(best, 7, 500, 3000)
	if err != nil {
		log.Fatal(err)
	}
	b := m.Breakdown
	fmt.Printf("\ntime at the optimum: execution %.1f%% (of which repeated %.1f%%), checkpointing %.1f%%, recovery %.1f%%, reboot %.1f%%\n",
		100*b.Execution, 100*m.RepeatedWorkFraction,
		100*(b.Quiesce+b.Dump+b.FSWait), 100*b.Recovery, 100*b.Reboot)
	fmt.Printf("failure handling consumes %.1f%% of the machine — the paper's >50%% claim.\n",
		100*(m.RepeatedWorkFraction+b.Recovery+b.Reboot))
}
