// Validation: the repository contains two completely independent
// implementations of the paper's model — the SAN executor (places,
// activities, event list) and a hand-rolled renewal-cycle simulator. This
// example runs both on the same configurations and shows their useful-work
// fractions agreeing, then checks the analytic renewal model against both.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	base := repro.DefaultConfig()
	base.ComputeFraction = 1 // the cycle engine's envelope
	base.NoIOFailures = true

	fmt.Println("config                      SAN-engine   cycle-engine   analytic")
	for _, c := range []struct {
		name string
		mut  func(*repro.Config)
	}{
		{"64K procs, MTTF 1yr", func(*repro.Config) {}},
		{"128K procs, MTTF 1yr", func(c *repro.Config) { c.Processors = 128 * 1024 }},
		{"64K procs, MTTF 3yr", func(c *repro.Config) { c.MTTFPerNode = repro.Years(3) }},
		{"max-of-n, timeout 120s", func(c *repro.Config) {
			c.MTTFPerNode = repro.Years(3)
			c.Coordination = repro.CoordMaxOfN
			c.Timeout = repro.Seconds(120)
		}},
	} {
		cfg := base
		c.mut(&cfg)

		san, err := repro.Trajectory(cfg, 11, 300, 3000)
		if err != nil {
			log.Fatal(err)
		}
		cyc, err := repro.TrajectoryCycle(cfg, 12, 300, 3000)
		if err != nil {
			log.Fatal(err)
		}
		mtbf := cfg.MTTFPerNode / float64(cfg.Nodes())
		analytic, _, err := repro.CoordinationEfficiencyFor(cfg, mtbf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-27s %-12.4f %-14.4f %.4f\n",
			c.name, san.UsefulWorkFraction, cyc.UsefulWorkFraction, analytic)
	}
	fmt.Println("\nthree independent routes to the same numbers: the SAN simulation,")
	fmt.Println("a renewal-cycle simulation sharing no engine code, and a closed-form")
	fmt.Println("renewal approximation.")
}
