// Checkpoint-interval tuning: sweeps the checkpoint interval like Figure
// 4b/4f and compares the simulation against Young's and Daly's closed-form
// optimum intervals. The paper's finding: for large systems there is no
// practical optimum in the 15 min–4 h range — checkpoint as often as the
// I/O system allows.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.Processors = 64 * 1024
	cfg.MTTFPerNode = repro.Years(1)

	systemMTBF := cfg.MTTFPerNode / float64(cfg.Nodes())
	overhead := cfg.MTTQ + cfg.CheckpointDumpTime()
	young, err := repro.YoungInterval(overhead, systemMTBF)
	if err != nil {
		log.Fatal(err)
	}
	daly, err := repro.DalyInterval(overhead, systemMTBF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system MTBF %.2f h, checkpoint overhead %.1f s\n",
		systemMTBF, overhead*3600)
	fmt.Printf("Young optimum interval: %.1f min\n", young*60)
	fmt.Printf("Daly  optimum interval: %.1f min\n", daly*60)
	fmt.Println("(both below the 15-minute floor the paper deems practical)")
	fmt.Println()

	fmt.Println("interval  simulated-fraction  analytic-efficiency  total-useful-work")
	for _, minutes := range []float64{15, 30, 60, 120, 240} {
		c := cfg
		c.CheckpointInterval = repro.Minutes(minutes)
		res, err := repro.Simulate(c, repro.Options{
			Replications: 3, Warmup: 300, Measure: 1500, Seed: uint64(minutes),
		})
		if err != nil {
			log.Fatal(err)
		}
		eff, err := repro.AnalyticEfficiency(c, c.CheckpointInterval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9.0f %-19.4f %-20.4f %.0f\n",
			minutes, res.UsefulWorkFraction.Mean, eff, res.TotalUsefulWork.Mean)
	}
	fmt.Println("\nuseful work decreases monotonically with the interval: within the")
	fmt.Println("practical range, checkpoint on the granularity of minutes, not hours.")
}
