// Quickstart: simulate the paper's base system (64K processors, MTTF
// 1 year per node, 30-minute coordinated checkpoints) and print the two
// metrics the paper reports — useful work fraction and total useful work —
// next to the classic analytic prediction.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig() // Table 3 parameters
	fmt.Printf("system: %d processors = %d nodes × %d, %d I/O nodes\n",
		cfg.Processors, cfg.Nodes(), cfg.ProcsPerNode, cfg.IONodes())
	fmt.Printf("per-node MTTF 1 yr → system MTBF ≈ %.2f h\n",
		cfg.MTTFPerNode/float64(cfg.Nodes()))

	res, err := repro.Simulate(cfg, repro.Options{
		Replications: 3,
		Warmup:       300,  // discarded transient (paper: 1000 h)
		Measure:      1500, // measured hours per replication
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("useful work fraction: %v\n", res.UsefulWorkFraction)
	fmt.Printf("total useful work:    %v\n", res.TotalUsefulWork)

	eff, err := repro.AnalyticEfficiency(cfg, cfg.CheckpointInterval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic analytic efficiency (no coordination, no correlation): %.4f\n", eff)
	fmt.Println("\nthe paper's point: at this scale more than a third of the")
	fmt.Println("machine's time is already lost to failures and recovery.")
}
