// Protocol validation: runs the message-level simulation of the six-step
// coordinated checkpointing protocol (quiesce broadcast over a BlueGene-
// style interconnect tree, per-node exponential quiesce times, 'ready'
// reduction, master timeout) and compares the measured coordination time
// with the lumped max-of-n model the paper's SAN uses (Section 5).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.ProcsPerNode = 8

	fmt.Println("nodes   E[coord] lumped (s)   measured (s)   abort-frac@100s")
	for _, nodes := range []int{1024, 4096, 16384} {
		c := cfg
		c.Processors = nodes * c.ProcsPerNode
		c.Timeout = repro.Seconds(100)
		sum, err := repro.SimulateProtocol(c, 64, repro.Seconds(0.001), 100, uint64(nodes))
		if err != nil {
			log.Fatal(err)
		}
		lumped := repro.ExpectedCoordinationTime(nodes, c.MTTQ)
		fmt.Printf("%-7d %-22.1f %-14.1f %.3f\n",
			nodes, lumped*3600, sum.Coordination.Mean()*3600, sum.AbortFraction)
	}
	fmt.Println("\nthe message-level protocol reproduces the lumped MTTQ·H_n law the")
	fmt.Println("SAN model assumes, and shows the timeout turning into a")
	fmt.Println("probabilistic checkpoint-abort as the machine grows (Figure 6).")
}
